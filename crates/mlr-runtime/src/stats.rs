//! Runtime-wide statistics.

use mlr_memo::{DistributedStats, FaultStats, ParallelStats, StoreStats};
use serde::{Deserialize, Serialize};

/// Deadline bookkeeping across all decided jobs (a job is *decided* once it
/// completed, expired in the queue, or expired mid-run; cancelled jobs and
/// jobs still in flight are undecided). Slack is signed seconds between the
/// deadline and the moment the job was decided: positive when it finished
/// with time to spare, negative when it was late (or skipped as expired).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DeadlineStats {
    /// Jobs admitted with a deadline.
    pub submitted: u64,
    /// Decided jobs that completed at or before their deadline.
    pub met: u64,
    /// Decided jobs that missed: expired (queued or mid-run) or completed
    /// past the deadline.
    pub missed: u64,
    /// Median slack over decided jobs, seconds.
    pub slack_p50_seconds: f64,
    /// 90th-percentile slack over decided jobs, seconds. Percentiles are
    /// taken over ascending slack, so the *low* tail (tight or missed
    /// deadlines) sits at p50 < p90 < p99 only when slack is plentiful —
    /// compare p50 against the miss rate when reading these.
    pub slack_p90_seconds: f64,
    /// 99th-percentile slack over decided jobs, seconds.
    pub slack_p99_seconds: f64,
}

impl DeadlineStats {
    /// Decided jobs (met + missed).
    pub fn decided(&self) -> u64 {
        self.met + self.missed
    }

    /// Fraction of decided jobs that missed their deadline (0 when no
    /// deadline-carrying job has been decided yet).
    pub fn miss_rate(&self) -> f64 {
        let decided = self.decided();
        if decided == 0 {
            0.0
        } else {
            self.missed as f64 / decided as f64
        }
    }
}

/// A snapshot of the runtime's aggregate behaviour: job throughput, queue
/// latency, worker utilisation, and the shared store's counters (including
/// the cross-job hit rate that quantifies what sharing one memoization
/// database across jobs buys).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs that panicked while running (bad configurations); the worker
    /// survives and the job's handle resolves `Failed`.
    pub failed: u64,
    /// Workers respawned in place after a panic escaped the per-job
    /// containment. The pool's capacity never shrinks: every death is
    /// matched by a restart, and the job that was in flight resolves
    /// `Failed { retryable: true }` (counted in `failed` too).
    pub worker_restarts: u64,
    /// Jobs cancelled by their submitter — removed from the queue before
    /// running, or stopped at an ADMM iteration boundary mid-run.
    pub cancelled: u64,
    /// Jobs whose deadline passed — skipped at pop while still queued, or
    /// stopped at an iteration boundary mid-run.
    pub expired: u64,
    /// Jobs currently waiting in the queue.
    pub queued: usize,
    /// Wall-clock seconds since the runtime started.
    pub wall_seconds: f64,
    /// Total worker-busy seconds across all workers.
    pub busy_seconds: f64,
    /// Mean queue latency over completed jobs.
    pub queue_seconds_mean: f64,
    /// Maximum queue latency over completed jobs.
    pub queue_seconds_max: f64,
    /// Utilisation of the store's tightest capacity cap in `[0, 1]` at
    /// snapshot time (0 for unbounded stores).
    pub store_pressure: f64,
    /// Counters of the shared memo store (including eviction counts and
    /// resident bytes under the capacity budget).
    pub store: StoreStats,
    /// Deadline outcomes and slack percentiles across decided jobs.
    pub deadline: DeadlineStats,
    /// Aggregate chunk-scheduler statistics over all finished jobs: thread
    /// requests vs governor grants and the measured/modeled speedups of the
    /// intra-job parallel phases.
    pub parallel: ParallelStats,
    /// Per-node accounting of the distributed memo tier (stripe placement,
    /// link utilisation, replica-set effect). `None` unless the runtime was
    /// configured with a [`mlr_memo::NodeTopology`].
    pub distributed: Option<DistributedStats>,
}

impl RuntimeStats {
    /// Completed jobs per wall-clock second.
    pub fn throughput_jobs_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.wall_seconds
        }
    }

    /// Fraction of worker capacity that was busy.
    pub fn utilisation(&self) -> f64 {
        let capacity = self.wall_seconds * self.workers as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_seconds / capacity).min(1.0)
        }
    }

    /// Store hit rate (all jobs).
    pub fn hit_rate(&self) -> f64 {
        self.store.hit_rate()
    }

    /// Fraction of store queries served by an entry another job inserted —
    /// the headline number of the shared-store design.
    pub fn cross_job_hit_rate(&self) -> f64 {
        self.store.cross_job_hit_rate()
    }

    /// Entries evicted from the shared store to satisfy its budget.
    pub fn evictions(&self) -> u64 {
        self.store.evictions
    }

    /// Resident bytes of the shared store (values + raw inputs + keys).
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes
    }

    /// Store hit rate over only the queries issued while the store was
    /// under capacity pressure — how well the eviction policy preserves
    /// reuse once the budget binds.
    pub fn hit_rate_under_pressure(&self) -> f64 {
        self.store.hit_rate_under_pressure()
    }

    /// Per-job parallel efficiency: the fraction of requested chunk-level
    /// threads the global governor actually granted across all finished
    /// jobs (1.0 when jobs run sequentially or uncontended).
    pub fn parallel_efficiency(&self) -> f64 {
        self.parallel.grant_ratio()
    }

    /// Measured speedup of the jobs' intra-job parallel phases (serialized
    /// chunk work over parallel wall time).
    pub fn intra_job_speedup(&self) -> f64 {
        self.parallel.achieved_speedup()
    }

    /// Fraction of decided deadline-carrying jobs that missed their
    /// deadline — the serving front-end's headline quality number.
    pub fn deadline_miss_rate(&self) -> f64 {
        self.deadline.miss_rate()
    }

    /// Fault accounting of the distributed memo tier: `None` unless the
    /// runtime was configured with both a topology and a
    /// [`fault_plan`](crate::RuntimeConfig::fault_plan).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.distributed.as_ref()?.faults.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = RuntimeStats {
            workers: 4,
            submitted: 10,
            rejected: 2,
            completed: 8,
            failed: 0,
            worker_restarts: 0,
            cancelled: 1,
            expired: 2,
            queued: 0,
            wall_seconds: 2.0,
            busy_seconds: 4.0,
            queue_seconds_mean: 0.1,
            queue_seconds_max: 0.5,
            store_pressure: 0.75,
            store: StoreStats {
                entries: 100,
                queries: 50,
                hits: 20,
                cross_job_hits: 10,
                inserts: 30,
                value_bytes: 1 << 20,
                evictions: 12,
                expirations: 3,
                resident_bytes: 3 << 20,
                peak_resident_bytes: 3 << 20,
                pressure_queries: 10,
                pressure_hits: 4,
            },
            deadline: DeadlineStats {
                submitted: 5,
                met: 3,
                missed: 1,
                slack_p50_seconds: 0.8,
                slack_p90_seconds: 2.0,
                slack_p99_seconds: 2.4,
            },
            parallel: ParallelStats {
                batches: 4,
                chunks: 16,
                threads_requested: 16,
                threads_granted: 12,
                chunk_seconds: 2.0,
                phase_seconds: 1.0,
                modeled_serial_cost: 8.0,
                modeled_critical_cost: 2.0,
            },
            distributed: None,
        };
        assert!((s.parallel_efficiency() - 0.75).abs() < 1e-12);
        assert!((s.intra_job_speedup() - 2.0).abs() < 1e-12);
        assert!((s.throughput_jobs_per_second() - 4.0).abs() < 1e-12);
        assert!((s.utilisation() - 0.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert!((s.cross_job_hit_rate() - 0.2).abs() < 1e-12);
        assert_eq!(s.evictions(), 12);
        assert_eq!(s.resident_bytes(), 3 << 20);
        assert!((s.hit_rate_under_pressure() - 0.4).abs() < 1e-12);
        assert_eq!(s.deadline.decided(), 4);
        assert!((s.deadline_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_deadline_stats_report_zero_miss_rate() {
        let d = DeadlineStats::default();
        assert_eq!(d.decided(), 0);
        assert_eq!(d.miss_rate(), 0.0);
    }
}
