//! The runtime: a fixed worker pool multiplexing reconstruction jobs over
//! one shared, sharded memoization store.
//!
//! Every admitted job is tracked by a ticket (see [`crate::handle`]) that
//! resolves to a typed [`JobStatus`]. Workers check a popped entry's cancel
//! token and deadline *before* running it — a cancelled or expired queued
//! job is reported and skipped, never executed — and in-flight jobs stop
//! cooperatively at ADMM iteration boundaries through the same token.

use crate::handle::{JobHandle, JobStatus, Ticket};
use crate::job::{JobReport, ReconJob};
use crate::queue::{AdmissionError, JobQueue, QueuedJob};
use crate::stats::{DeadlineStats, RuntimeStats};
use mlr_core::{CancelToken, MlrPipeline, StopCause};
use mlr_memo::{
    ConcurrencyGovernor, DistributedMemoDb, EncoderConfig, JobId, MemoDbConfig, MemoStore,
    NodeTopology, ParallelStats, ShardedMemoDb, DEFAULT_SHARDS,
};
use mlr_sim::faults::FaultPlan;
use mlr_telemetry::{CounterId, SignedHistogram, SpanKind, Telemetry, TelemetryConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue capacity; submissions beyond it are rejected (admission
    /// control) or block (backpressure), depending on the submit call.
    pub queue_capacity: usize,
    /// Lock stripes of the shared memo store.
    pub shards: usize,
    /// Shared store database configuration (τ threshold, scoping). Jobs keep
    /// their own `MemoConfig`, but the store gates reuse with *this* τ, so
    /// tenants should agree with it.
    pub db: MemoDbConfig,
    /// Shared store key-encoder configuration.
    pub encoder: EncoderConfig,
    /// Seed for the shared encoder.
    pub seed: u64,
    /// Admission control against store pressure: when set, submissions are
    /// rejected with [`AdmissionError::StorePressure`] while the shared
    /// store's tightest capacity cap is more than this utilised (`None`
    /// disables the check; pressure is always 0 for unbounded stores).
    pub admission_max_pressure: Option<f64>,
    /// Default chunk-level threads per job (a job whose own
    /// `MlrConfig::intra_job_threads` asks for more keeps its larger
    /// request). Every thread beyond a job's first is leased from the global
    /// concurrency governor, so `workers × intra_job_threads` can never
    /// oversubscribe [`RuntimeConfig::core_budget`].
    pub intra_job_threads: usize,
    /// Total cores the runtime may occupy: each worker owns one, and the
    /// remainder forms the governor's pool of spare cores for chunk-level
    /// threads. Defaults to the machine's available parallelism.
    pub core_budget: usize,
    /// Unified telemetry: lock-free counters and stage histograms, per-job
    /// lifecycle spans, and (optionally) the store access trace. Off by
    /// default — disabled telemetry is a no-op recorder whose call sites
    /// cost one branch each, so the hot path stays allocation-free and
    /// timer-free.
    pub telemetry: bool,
    /// Capacity of the store access-trace ring (entry id, operator, stripe,
    /// hit/miss/insert/evict/expire, logical tick). `None` disables the
    /// trace; it is only honoured when [`RuntimeConfig::telemetry`] is on.
    /// The trace is attached to the store only when the runtime owns it
    /// exclusively (always true for [`Runtime::new`]); a pre-shared store
    /// passed to [`Runtime::with_store`] keeps whatever trace it was built
    /// with.
    pub access_trace: Option<usize>,
    /// Interval of the proactive expiry sweep: a background sweeper walks
    /// the queue and resolves entries whose deadline already passed as
    /// [`JobStatus::Expired`] *in place*, instead of letting them ride to
    /// the queue head and expire at pop. Deep queues thus shed dead work
    /// (and free their slots for blocked producers) without spending worker
    /// time on it. `None` disables the sweep; the pop-time check remains as
    /// a backstop either way.
    pub expiry_sweep: Option<Duration>,
    /// Distributed memo tier: when set, the shared store's lock stripes are
    /// spread over this many simulated memory nodes and every worker talks
    /// to the store through a [`DistributedMemoDb`] — remote hits, misses
    /// and inserts are charged through per-node shared-link queues, and hot
    /// entries are replicated by benefit density. Store *semantics* are
    /// untouched (bit-identical hits to the plain sharded store); only the
    /// modeled network accounting in [`RuntimeStats::distributed`] is added.
    /// `None` keeps the store purely local.
    pub topology: Option<NodeTopology>,
    /// Deterministic fault schedule armed on the distributed memo tier:
    /// node crash/restart windows, link degradations and stripe stalls,
    /// all keyed to the store's logical tick (never the wall clock).
    /// Requires [`RuntimeConfig::topology`] — without one there are no
    /// simulated memory nodes to fault, and the plan is ignored. Fault
    /// accounting surfaces through
    /// [`DistributedStats::faults`](mlr_memo::DistributedStats) inside
    /// [`RuntimeStats::distributed`]. `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            queue_capacity: 32,
            shards: DEFAULT_SHARDS,
            db: MemoDbConfig::default(),
            encoder: EncoderConfig {
                input_grid: 8,
                conv1_filters: 4,
                conv2_filters: 8,
                embedding_dim: 32,
                learning_rate: 1e-3,
            },
            seed: 7,
            admission_max_pressure: None,
            intra_job_threads: 1,
            core_budget: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            telemetry: false,
            access_trace: None,
            expiry_sweep: Some(Duration::from_millis(10)),
            topology: None,
            fault_plan: None,
        }
    }
}

impl RuntimeConfig {
    /// Aligns the store's τ, capacity budget, eviction policy and encoder
    /// seed with a job configuration, so a single job run through the
    /// runtime behaves exactly like `MlrPipeline::run_memoized` (the
    /// determinism contract the tests pin) — bounded or not.
    pub fn matching(config: &mlr_core::MlrConfig) -> Self {
        Self {
            db: MemoDbConfig {
                tau: config.memo.tau,
                budget: config.memo.budget,
                eviction: config.memo.eviction,
                ..Default::default()
            },
            seed: config.problem.seed,
            ..Default::default()
        }
    }
}

/// Signed slack of `deadline` seen from `at`: positive while there is time
/// left, negative once the deadline has passed.
pub(crate) fn slack_seconds(deadline: Instant, at: Instant) -> f64 {
    if at <= deadline {
        deadline.duration_since(at).as_secs_f64()
    } else {
        -at.duration_since(deadline).as_secs_f64()
    }
}

/// Deadline bookkeeping behind [`RuntimeStats::deadline`]: decided outcomes
/// plus the decided jobs' signed slack distribution. The distribution lives
/// in a fixed-bucket [`SignedHistogram`] (microsecond-resolution log₂
/// buckets), so the ledger is O(1) memory however many jobs are decided and
/// a stats snapshot never sorts a sample vector — the old bounded-ring +
/// sort design this replaces.
#[derive(Default)]
pub(crate) struct DeadlineLedger {
    pub(crate) submitted: u64,
    pub(crate) met: u64,
    pub(crate) missed: u64,
    pub(crate) slack: SignedHistogram,
}

impl DeadlineLedger {
    fn push_slack(&mut self, slack_seconds: f64) {
        self.slack.record_seconds(slack_seconds);
    }
}

#[derive(Default)]
pub(crate) struct Counters {
    /// Recorder shared with the workers and the memo engine; disabled by
    /// default, so the `note_*` hooks cost one branch each.
    pub(crate) telemetry: Telemetry,
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    /// Workers respawned in place after a panic escaped the per-job
    /// containment — the pool's capacity never shrinks on a worker death.
    pub(crate) worker_restarts: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) queue_ns_total: AtomicU64,
    /// Jobs whose queue latency landed in `queue_ns_total` — every popped
    /// entry that actually ran, whatever its terminal status — so the mean
    /// divides a matching sample set.
    pub(crate) queue_samples: AtomicU64,
    pub(crate) queue_ns_max: AtomicU64,
    pub(crate) busy_ns_total: AtomicU64,
    /// Aggregate of every finished job's chunk-scheduler statistics (the
    /// per-job parallel efficiency the runtime reports).
    pub(crate) parallel: Mutex<ParallelStats>,
    pub(crate) deadlines: Mutex<DeadlineLedger>,
}

impl Counters {
    /// Counts a rejected submission — every rejection path must land here so
    /// `RuntimeStats::rejected` never under-reports.
    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one worker death + respawn, and resolves the job that was in
    /// flight on the dying worker (if any) as `Failed { retryable: true }`:
    /// the job was a casualty of the worker, not of its own configuration,
    /// so resubmitting it is sound.
    pub(crate) fn note_worker_restart(
        &self,
        casualty: Option<(JobId, Arc<Ticket>)>,
        error: String,
    ) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
        self.telemetry.count(CounterId::WorkerRestarts, 1);
        if let Some((id, ticket)) = casualty {
            self.failed.fetch_add(1, Ordering::Relaxed);
            self.telemetry.count(CounterId::JobsFailed, 1);
            self.telemetry.span(id, SpanKind::Failed, 0);
            ticket.resolve(JobStatus::Failed {
                error,
                retryable: true,
            });
        }
    }

    pub(crate) fn note_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.telemetry.count(CounterId::JobsCancelled, 1);
    }

    /// An expired job (skipped in the queue or stopped mid-run): counted as
    /// a deadline miss with its (negative) slack sample.
    pub(crate) fn note_expired(&self, late_seconds: f64) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.telemetry.count(CounterId::JobsExpired, 1);
        let mut ledger = self.deadlines.lock();
        ledger.missed += 1;
        ledger.push_slack(-late_seconds);
    }

    /// An expired job resolved in place by the proactive sweep (never even
    /// popped): a deadline miss like any other expiry, plus the sweep's own
    /// counter so operators can see how much dead work the sweeper sheds.
    pub(crate) fn note_swept_expired(&self, late_seconds: f64) {
        self.note_expired(late_seconds);
        self.telemetry.count(CounterId::SweptExpired, 1);
    }

    /// A completed job that carried a deadline: met when it finished with
    /// non-negative slack, missed otherwise (it ran to completion late).
    pub(crate) fn note_deadline_outcome(&self, slack_seconds: f64) {
        let mut ledger = self.deadlines.lock();
        if slack_seconds >= 0.0 {
            ledger.met += 1;
        } else {
            ledger.missed += 1;
        }
        ledger.push_slack(slack_seconds);
    }
}

/// The multi-tenant reconstruction runtime.
///
/// Jobs enter a bounded priority queue; a fixed pool of worker threads pops
/// them and runs the full memoized ADMM reconstruction, every executor
/// sharing one [`ShardedMemoDb`]. Chunk-level USFFT kernels inside a job
/// fan out through the rayon scope-based data-parallel layer, so the two
/// parallelism grains compose: jobs across workers, chunk kernels within a
/// job.
pub struct Runtime {
    queue: Arc<JobQueue>,
    store: Arc<ShardedMemoDb>,
    distributed: Option<Arc<DistributedMemoDb>>,
    counters: Arc<Counters>,
    governor: Arc<ConcurrencyGovernor>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
    worker_count: usize,
    admission_max_pressure: Option<f64>,
    next_job: AtomicU64,
    started: Instant,
}

impl Runtime {
    /// Starts a runtime with a fresh shared store.
    pub fn new(config: RuntimeConfig) -> Self {
        let store = Arc::new(ShardedMemoDb::with_shards(
            config.db,
            config.encoder,
            config.seed,
            config.shards,
        ));
        Self::with_store(config, store)
    }

    /// Starts a runtime over an existing (possibly pre-warmed) store.
    pub fn with_store(config: RuntimeConfig, store: Arc<ShardedMemoDb>) -> Self {
        assert!(config.workers > 0, "worker count must be positive");
        let telemetry = if config.telemetry {
            Telemetry::with_config(TelemetryConfig {
                access_trace_capacity: config.access_trace,
                ..TelemetryConfig::default()
            })
        } else {
            Telemetry::disabled()
        };
        // The access trace can only be attached while the store is still
        // exclusively ours (Runtime::new always is); a pre-shared store
        // keeps whatever trace it was constructed with.
        let mut store = store;
        if let Some(trace) = telemetry.access_trace() {
            if let Some(db) = Arc::get_mut(&mut store) {
                db.set_access_trace(trace);
            }
        }
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let counters = Arc::new(Counters {
            telemetry,
            ..Counters::default()
        });
        // The distributed tier wraps the *same* sharded store — semantics
        // (and the bit-identity contract) are the inner store's; the wrapper
        // only adds per-node network accounting on the ordered-commit paths.
        // A fault plan arms deterministic crash/degradation injection on
        // that tier; without a topology there is nothing to fault.
        let fault_plan = config.fault_plan.clone();
        let distributed = config.topology.map(|topology| {
            Arc::new(match fault_plan {
                Some(plan) => DistributedMemoDb::with_faults(Arc::clone(&store), topology, plan),
                None => DistributedMemoDb::new(Arc::clone(&store), topology),
            })
        });
        let exec_store: Arc<dyn MemoStore> = match &distributed {
            Some(d) => Arc::clone(d) as Arc<dyn MemoStore>,
            None => Arc::clone(&store) as Arc<dyn MemoStore>,
        };
        // Each worker owns one core of the budget; whatever is left over is
        // the governor's pool of spare cores for chunk-level threads.
        let governor = ConcurrencyGovernor::for_pool(config.core_budget, config.workers);
        let intra_job_threads = config.intra_job_threads.max(1);
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&exec_store);
                let counters = Arc::clone(&counters);
                let governor = Arc::clone(&governor);
                std::thread::Builder::new() // mlr-check: allow(thread-spawn) — runtime-owned pool: these threads are the governed worker pool
                    .name(format!("mlr-worker-{i}"))
                    .spawn(move || {
                        // Graceful degradation: a panic that escapes the
                        // per-job containment kills one pass of the loop,
                        // not the pool slot. The in-flight job (tracked in
                        // the slot below) resolves `Failed { retryable }`,
                        // the restart is counted, and the same thread
                        // re-enters the worker loop — the pool's capacity
                        // never shrinks. A clean exit (queue closed and
                        // drained) ends the thread.
                        let inflight: Mutex<Option<(JobId, Arc<Ticket>)>> = Mutex::new(None);
                        loop {
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    worker_loop(
                                        &queue,
                                        &store,
                                        &counters,
                                        &governor,
                                        intra_job_threads,
                                        &inflight,
                                    )
                                }));
                            match outcome {
                                Ok(()) => break,
                                Err(payload) => {
                                    let casualty = inflight.lock().take();
                                    counters.note_worker_restart(casualty, panic_message(payload));
                                }
                            }
                        }
                    })
                    .expect("failed to spawn worker thread") // mlr-check: allow(unwrap-expect) — startup: a runtime without its pool is unusable, fail fast
            })
            .collect();
        let sweeper = config.expiry_sweep.map(|interval| {
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new() // mlr-check: allow(thread-spawn) — runtime-owned pool: these threads are the governed worker pool
                .name("mlr-sweeper".to_string())
                .spawn(move || sweeper_loop(&queue, &counters, interval))
                .expect("failed to spawn sweeper thread") // mlr-check: allow(unwrap-expect) — startup: a runtime without its pool is unusable, fail fast
        });
        Self {
            queue,
            store,
            distributed,
            counters,
            governor,
            workers,
            sweeper,
            worker_count: config.workers,
            admission_max_pressure: config.admission_max_pressure,
            // Job 0 is reserved for standalone executors.
            next_job: AtomicU64::new(1),
            started: Instant::now(), // mlr-check: allow(wall-clock) — decoration only: start timestamp feeds latency counters
        }
    }

    /// The shared memo store.
    pub fn store(&self) -> &Arc<ShardedMemoDb> {
        &self.store
    }

    /// The distributed memo tier wrapping the shared store, when the runtime
    /// was configured with a [`RuntimeConfig::topology`]; `None` for a
    /// purely local store.
    pub fn distributed(&self) -> Option<&Arc<DistributedMemoDb>> {
        self.distributed.as_ref()
    }

    /// The runtime's telemetry recorder: disabled (a no-op handle) unless
    /// [`RuntimeConfig::telemetry`] was set. Snapshot it for counters, stage
    /// histograms, lifecycle spans and the optional store access trace.
    pub fn telemetry(&self) -> &Telemetry {
        &self.counters.telemetry
    }

    /// The global concurrency governor arbitrating spare cores between the
    /// in-flight jobs' chunk-level threads.
    pub fn governor(&self) -> &Arc<ConcurrencyGovernor> {
        &self.governor
    }

    /// Utilisation of the shared store's tightest capacity cap in `[0, 1]`
    /// (0 when the store is unbounded) — what pressure-aware admission
    /// consults.
    pub fn store_pressure(&self) -> f64 {
        self.store.pressure()
    }

    /// Rejects the submission when the shared store is past the configured
    /// pressure limit — admitting more work would only churn the store.
    fn check_store_pressure(&self) -> Result<(), AdmissionError> {
        if let Some(limit) = self.admission_max_pressure {
            let pressure = self.store.pressure();
            if pressure > limit {
                return Err(AdmissionError::StorePressure { pressure, limit });
            }
        }
        Ok(())
    }

    /// The one admission path: every rejection — store pressure, queue full,
    /// shutting down, blocking or not — is counted in
    /// [`RuntimeStats::rejected`], and the job id is allocated by the queue
    /// only *after* admission succeeds (rejected submissions never consume
    /// an id, keeping the admitted-id sequence dense).
    pub(crate) fn admit(
        &self,
        job: ReconJob,
        deadline: Option<Instant>,
        blocking: bool,
    ) -> Result<JobHandle, AdmissionError> {
        if let Err(e) = self.check_store_pressure() {
            self.counters.note_rejected();
            return Err(e);
        }
        let name = job.name.clone();
        // The token is the single source of truth for both cancellation and
        // the absolute deadline: queue-skip, mid-run expiry and the handle
        // all read it from here.
        let token = match deadline {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::new(),
        };
        let ticket = Arc::new(Ticket::new(token));
        // Count the deadline submission *before* the push: the instant the
        // entry is in the queue a worker may pop and decide it, and a stats
        // snapshot must never see more decided deadline jobs than submitted
        // ones. Rolled back below if admission fails.
        if deadline.is_some() {
            self.counters.deadlines.lock().submitted += 1;
        }
        let pushed = if blocking {
            self.queue
                .push_blocking(&self.next_job, job, Arc::clone(&ticket))
        } else {
            self.queue
                .try_push(&self.next_job, job, Arc::clone(&ticket))
        };
        match pushed {
            Ok(id) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.telemetry.count(CounterId::JobsAdmitted, 1);
                self.counters
                    .telemetry
                    .span(id, SpanKind::Admitted, u64::from(deadline.is_some()));
                Ok(JobHandle {
                    id,
                    name,
                    ticket,
                    queue: Arc::clone(&self.queue),
                    counters: Arc::clone(&self.counters),
                })
            }
            Err(e) => {
                if deadline.is_some() {
                    self.counters.deadlines.lock().submitted -= 1;
                }
                self.counters.note_rejected();
                Err(e)
            }
        }
    }

    /// Non-blocking submission with admission control: rejects with
    /// [`AdmissionError::QueueFull`] when the queue is at capacity, or with
    /// [`AdmissionError::StorePressure`] when the shared store is past the
    /// configured pressure limit.
    pub fn submit(&self, job: ReconJob) -> Result<JobHandle, AdmissionError> {
        self.admit(job, None, false)
    }

    /// Blocking submission: applies backpressure to the producer until a
    /// queue slot frees up. Store pressure still rejects (blocking would
    /// not relieve it — the store only drains by eviction).
    pub fn submit_blocking(&self, job: ReconJob) -> Result<JobHandle, AdmissionError> {
        self.admit(job, None, true)
    }

    /// A snapshot of the runtime statistics.
    pub fn stats(&self) -> RuntimeStats {
        let completed = self.counters.completed.load(Ordering::Relaxed);
        let failed = self.counters.failed.load(Ordering::Relaxed);
        let queue_samples = self.counters.queue_samples.load(Ordering::Relaxed);
        let queue_ns_total = self.counters.queue_ns_total.load(Ordering::Relaxed);
        let deadline = {
            let ledger = self.counters.deadlines.lock();
            DeadlineStats {
                submitted: ledger.submitted,
                met: ledger.met,
                missed: ledger.missed,
                slack_p50_seconds: ledger.slack.percentile_seconds(0.50),
                slack_p90_seconds: ledger.slack.percentile_seconds(0.90),
                slack_p99_seconds: ledger.slack.percentile_seconds(0.99),
            }
        };
        RuntimeStats {
            workers: self.worker_count,
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            completed,
            failed,
            worker_restarts: self.counters.worker_restarts.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            expired: self.counters.expired.load(Ordering::Relaxed),
            queued: self.queue.len(),
            wall_seconds: self.started.elapsed().as_secs_f64(),
            busy_seconds: self.counters.busy_ns_total.load(Ordering::Relaxed) as f64 * 1e-9,
            queue_seconds_mean: if queue_samples == 0 {
                0.0
            } else {
                queue_ns_total as f64 * 1e-9 / queue_samples as f64
            },
            queue_seconds_max: self.counters.queue_ns_max.load(Ordering::Relaxed) as f64 * 1e-9,
            store_pressure: self.store.pressure(),
            store: self.store.stats(),
            deadline,
            parallel: *self.counters.parallel.lock(),
            distributed: self.distributed.as_ref().map(|d| d.distributed_stats()),
        }
    }

    /// The configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Enters drain mode: no further submissions are admitted (they reject
    /// with [`AdmissionError::ShuttingDown`], and are counted as rejected),
    /// while already-admitted jobs keep running to completion. Workers stay
    /// alive until [`Runtime::shutdown`] or drop.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Drains the queue, stops the workers and returns the final statistics.
    /// Already-admitted jobs still run to completion.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.sweeper.take() {
            let _ = s.join();
        }
        self.stats()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.sweeper.take() {
            let _ = s.join();
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

fn worker_loop(
    queue: &JobQueue,
    store: &Arc<dyn MemoStore>,
    counters: &Counters,
    governor: &Arc<ConcurrencyGovernor>,
    intra_job_threads: usize,
    inflight: &Mutex<Option<(JobId, Arc<Ticket>)>>,
) {
    while let Some(q) = queue.pop() {
        let QueuedJob {
            id,
            job,
            enqueued,
            ticket,
            ..
        } = q;
        // From pop to resolution this job is the worker's in-flight slot:
        // if the worker dies before resolving it, the respawn path reads
        // the slot and fails the job over (resolve is idempotent, so a
        // race with a late resolution is harmless).
        *inflight.lock() = Some((id, Arc::clone(&ticket)));
        let deadline = ticket.token.deadline();
        // Cancelled while queued but popped before the handle could remove
        // it: the job never runs. Checked before the deadline so that, as
        // everywhere else, cancellation wins over expiry when both apply —
        // a submitter-cancelled job must not inflate the deadline-miss rate.
        if ticket.token.is_cancelled() {
            counters.note_cancelled();
            counters.telemetry.span(id, SpanKind::Cancelled, 0);
            ticket.resolve(JobStatus::Cancelled {
                while_running: false,
                completed_iterations: 0,
            });
            inflight.lock().take();
            continue;
        }
        // Deadline-aware pop: an entry that expired while queued is reported
        // and skipped — it never runs (and never touches the store).
        let now = Instant::now(); // mlr-check: allow(wall-clock) — serving deadline: expiry sweep compares wall deadlines
        if let Some(at) = deadline {
            if now >= at {
                let late = -slack_seconds(at, now);
                counters.note_expired(late);
                counters.telemetry.span(id, SpanKind::Expired, 0);
                ticket.resolve(JobStatus::Expired {
                    while_running: false,
                    late_seconds: late,
                    completed_iterations: 0,
                });
                inflight.lock().take();
                continue;
            }
        }

        ticket.set_running();
        counters.telemetry.span(id, SpanKind::Running, 0);
        // Fault injection: die *outside* the per-job containment below with
        // the job still in flight — the only way to exercise the respawn
        // path, since organic job panics are caught around `run_job`.
        if job.planted_worker_panic {
            panic!("planted worker panic with job {id} in flight");
        }
        let queue_ns = enqueued.elapsed().as_nanos() as u64;
        let token = ticket.token.clone();
        let start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: service-time measurement feeds counters
                                    // Contain per-job panics (bad configs assert deep in the pipeline):
                                    // one misbehaving tenant must not kill the worker and starve every
                                    // queued job behind it. The panicked job resolves `Failed`; the
                                    // worker lives on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(
                id,
                job,
                token,
                store,
                counters,
                governor,
                intra_job_threads,
                queue_ns,
            )
        }));
        let busy_ns = start.elapsed().as_nanos() as u64;
        counters.busy_ns_total.fetch_add(busy_ns, Ordering::Relaxed);
        // Queue-latency accounting lands together with its own sample count
        // (cancelled/expired mid-run jobs waited in the queue too), so the
        // mean always divides a matching sample set.
        counters
            .queue_ns_total
            .fetch_add(queue_ns, Ordering::Relaxed);
        counters.queue_samples.fetch_add(1, Ordering::Relaxed);
        counters.queue_ns_max.fetch_max(queue_ns, Ordering::Relaxed);
        let status = match outcome {
            Ok(status) => status,
            // A panic *inside* the job is deterministic (a bad configuration
            // asserts the same way every run): not retryable.
            Err(payload) => JobStatus::Failed {
                error: panic_message(payload),
                retryable: false,
            },
        };
        match &status {
            JobStatus::Completed(report) => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                counters.telemetry.count(CounterId::JobsCompleted, 1);
                counters
                    .telemetry
                    .span(id, SpanKind::Completed, report.loss.len() as u64);
                if let Some(at) = deadline {
                    // mlr-check: allow(wall-clock) — serving deadline: slack vs wall deadline feeds counters
                    counters.note_deadline_outcome(slack_seconds(at, Instant::now()));
                }
            }
            JobStatus::Failed { .. } => {
                counters.failed.fetch_add(1, Ordering::Relaxed);
                counters.telemetry.count(CounterId::JobsFailed, 1);
                counters.telemetry.span(id, SpanKind::Failed, 0);
            }
            JobStatus::Cancelled {
                completed_iterations,
                ..
            } => {
                counters.note_cancelled();
                counters
                    .telemetry
                    .span(id, SpanKind::Cancelled, *completed_iterations as u64);
            }
            JobStatus::Expired {
                late_seconds,
                completed_iterations,
                ..
            } => {
                counters.note_expired(*late_seconds);
                counters
                    .telemetry
                    .span(id, SpanKind::Expired, *completed_iterations as u64);
            }
        }
        ticket.resolve(status);
        inflight.lock().take();
    }
}

/// The proactive expiry sweep: every `interval`, entries whose deadline has
/// already passed are taken out of the queue and resolved
/// [`JobStatus::Expired`] on the spot — identical status and ledger
/// bookkeeping to the pop-time check, just earlier, so deep queues shed
/// dead work (and free slots for blocked producers) without a worker ever
/// touching it. Exits as soon as the queue closes; entries that expire
/// during drain are still caught by the pop-time backstop.
fn sweeper_loop(queue: &JobQueue, counters: &Counters, interval: Duration) {
    while !queue.is_closed() {
        let now = Instant::now(); // mlr-check: allow(wall-clock) — serving deadline: expiry sweep compares wall deadlines
        for q in queue.sweep_expired(now) {
            // Cancellation wins over expiry, exactly as at pop: a
            // submitter-cancelled entry swept in the race window between
            // its token tripping and its queue removal must not inflate
            // the deadline-miss rate.
            if q.ticket.token.is_cancelled() {
                counters.note_cancelled();
                counters.telemetry.span(q.id, SpanKind::Cancelled, 0);
                q.ticket.resolve(JobStatus::Cancelled {
                    while_running: false,
                    completed_iterations: 0,
                });
                continue;
            }
            let at = q
                .ticket
                .token
                .deadline()
                .expect("swept entries carry a deadline"); // mlr-check: allow(unwrap-expect) — invariant: sweep_expired only returns deadline-carrying entries
            let late = (-slack_seconds(at, Instant::now())).max(0.0); // mlr-check: allow(wall-clock) — serving deadline: slack vs wall deadline feeds counters
            counters.note_swept_expired(late);
            counters.telemetry.span(q.id, SpanKind::Swept, 0);
            q.ticket.resolve(JobStatus::Expired {
                while_running: false,
                late_seconds: late,
                completed_iterations: 0,
            });
        }
        std::thread::sleep(interval);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_job(
    id: JobId,
    job: ReconJob,
    token: CancelToken,
    store: &Arc<dyn MemoStore>,
    counters: &Counters,
    governor: &Arc<ConcurrencyGovernor>,
    intra_job_threads: usize,
    queue_ns: u64,
) -> JobStatus {
    let start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: service-time measurement feeds counters
                                // The runtime's default chunk parallelism applies unless the job itself
                                // asks for more; either way every thread beyond the first is leased from
                                // the shared governor, so workers × threads stays within the core budget.
    let mut config = job.config;
    config.intra_job_threads = config.intra_job_threads.max(intra_job_threads);
    let pipeline = MlrPipeline::new(config);
    let shared: Arc<dyn MemoStore> = Arc::clone(store);
    let (result, executor) = pipeline.run_memoized_observed(
        shared,
        id,
        Some(Arc::clone(governor)),
        &token,
        counters.telemetry.clone(),
    );
    let busy_ns = start.elapsed().as_nanos() as u64;

    let stats = executor.stats();
    let parallel = executor.parallel_stats();
    counters.parallel.lock().merge(&parallel);
    let completed_iterations = result.history.records().len();
    match result.stopped {
        Some(StopCause::Cancelled) => JobStatus::Cancelled {
            while_running: true,
            completed_iterations,
        },
        Some(StopCause::DeadlineExpired) => {
            let late = token
                .deadline()
                .map(|at| -slack_seconds(at, Instant::now())) // mlr-check: allow(wall-clock) — serving deadline: slack vs wall deadline feeds counters
                .unwrap_or(0.0)
                .max(0.0);
            JobStatus::Expired {
                while_running: true,
                late_seconds: late,
                completed_iterations,
            }
        }
        None => JobStatus::Completed(Arc::new(JobReport {
            job: id,
            name: job.name,
            reconstruction: result.reconstruction,
            loss: result.history.loss_series(),
            avoided_fraction: stats.total().avoided_fraction(),
            memo: stats,
            cache_hit_rate: executor.cache_stats().hit_rate(),
            parallel,
            queue_seconds: queue_ns as f64 * 1e-9,
            run_seconds: busy_ns as f64 * 1e-9,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use mlr_core::MlrConfig;

    fn tiny_config() -> MlrConfig {
        MlrConfig::quick(12, 8).with_iterations(4)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let handle = rt.submit(ReconJob::new("solo", tiny_config())).unwrap();
        let report = handle.wait_report().expect("job completes");
        assert_eq!(report.job, 1);
        assert_eq!(report.name, "solo");
        assert_eq!(report.loss.len(), 4);
        assert!(report.run_seconds > 0.0);
        assert!(report
            .reconstruction
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.expired, 0);
        assert!(stats.store.queries > 0);
    }

    #[test]
    fn concurrent_jobs_share_the_store() {
        let config = tiny_config();
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            ..RuntimeConfig::matching(&config)
        });
        let handles: Vec<_> = (0..4)
            .map(|i| {
                rt.submit(ReconJob::new(format!("job-{i}"), config))
                    .unwrap()
            })
            .collect();
        let reports: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait_report().expect("job completes"))
            .collect();
        assert_eq!(reports.len(), 4);
        // Identical samples: later jobs must reuse earlier jobs' entries.
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 4);
        assert!(
            stats.store.cross_job_hits > 0,
            "no cross-job reuse despite identical samples: {:?}",
            stats.store
        );
        assert!(stats.cross_job_hit_rate() > 0.0);
        assert!(stats.utilisation() > 0.0);
    }

    #[test]
    fn admission_control_applies_backpressure() {
        // One worker, capacity-1 queue: flooding submissions must reject.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 1,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let mut handles = Vec::new();
        let mut rejected = 0usize;
        for i in 0..12 {
            match rt.submit(
                ReconJob::new(format!("flood-{i}"), tiny_config()).with_priority(Priority::Batch),
            ) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(rejected > 0, "capacity-1 queue never pushed back");
        for h in handles {
            let _ = h.wait();
        }
        let stats = rt.shutdown();
        assert_eq!(stats.rejected as usize, rejected);
        assert_eq!(stats.submitted + stats.rejected, 12);
    }

    #[test]
    fn rejected_submissions_do_not_leak_job_ids() {
        // One worker, capacity-1 queue: the first job is popped immediately,
        // the second fills the slot, and everything after rejects. Rejected
        // submissions must not consume ids — the next admitted job's id is
        // dense with the previous one.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 1,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let a = rt.submit(ReconJob::new("a", tiny_config())).unwrap();
        assert_eq!(a.id(), 1);
        let mut b = None;
        let mut rejections = 0;
        for _ in 0..16 {
            match rt.submit(ReconJob::new("b", tiny_config())) {
                Ok(h) => {
                    b = Some(h);
                    break;
                }
                Err(AdmissionError::QueueFull { .. }) => rejections += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
            // The worker may still be holding "a"; give it a moment.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let b = b.expect("one submission eventually admitted");
        assert_eq!(b.id(), 2, "rejected submissions consumed job ids");
        assert!(a.wait().is_completed());
        assert!(b.wait().is_completed());
        // Wait for b to leave the queue, then the next admit must be id 3.
        let c = loop {
            match rt.submit(ReconJob::new("c", tiny_config())) {
                Ok(h) => break h,
                Err(AdmissionError::QueueFull { .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(5))
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        };
        assert_eq!(c.id(), 3, "id sequence of admitted jobs must stay dense");
        let _ = c.wait();
        let stats = rt.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected as usize, rejections);
    }

    #[test]
    fn panicking_job_resolves_failed_not_a_channel_error() {
        // An invalid configuration asserts deep inside the pipeline; the
        // worker must survive, keep serving the jobs queued behind it, and
        // the submitter must see a typed `Failed` status (not a bare
        // RecvError as in the old channel protocol).
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let bad = rt
            .submit(ReconJob::new("bad", MlrConfig::quick(0, 0)))
            .unwrap();
        let good = rt.submit(ReconJob::new("good", tiny_config())).unwrap();
        match bad.wait() {
            JobStatus::Failed { error, retryable } => {
                assert!(!error.is_empty(), "panic message must be captured");
                assert!(!retryable, "a job-level panic is deterministic");
            }
            other => panic!("panicked job must resolve Failed, got {other:?}"),
        }
        let report = good.wait_report().expect("queued job must still run");
        assert_eq!(report.name, "good");
        let stats = rt.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        // The per-job containment caught the panic: no worker died.
        assert_eq!(stats.worker_restarts, 0);
    }

    #[test]
    fn worker_death_respawns_and_keeps_draining_a_full_queue() {
        // A panic that escapes the per-job containment must not shrink the
        // pool: the dying worker's in-flight job fails over as retryable,
        // the restart is counted, and the same pool slot keeps draining the
        // jobs queued behind it — a full queue never stalls.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 8,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let doomed = rt
            .submit(ReconJob::new("doomed-1", tiny_config()).with_planted_worker_panic())
            .unwrap();
        let survivors: Vec<_> = (0..3)
            .map(|i| {
                rt.submit(ReconJob::new(format!("survivor-{i}"), tiny_config()))
                    .unwrap()
            })
            .collect();
        let doomed_again = rt
            .submit(ReconJob::new("doomed-2", tiny_config()).with_planted_worker_panic())
            .unwrap();
        match doomed.wait() {
            JobStatus::Failed { error, retryable } => {
                assert!(error.contains("planted"), "unexpected panic: {error}");
                assert!(retryable, "a worker-death casualty is retryable");
            }
            other => panic!("casualty must resolve Failed, got {other:?}"),
        }
        assert!(doomed_again.wait().is_retryable());
        for h in survivors {
            let report = h.wait_report().expect("queued jobs must still run");
            assert!(report.name.starts_with("survivor-"));
        }
        let stats = rt.shutdown();
        assert_eq!(stats.worker_restarts, 2);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn store_pressure_gates_admission() {
        use mlr_memo::{CapacityBudget, EvictionPolicyKind};
        // A one-entry budget saturates after the first job; with a pressure
        // limit configured, the next submission must be turned away.
        let config =
            tiny_config().with_memo_budget(CapacityBudget::entries(1), EvictionPolicyKind::Fifo);
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            admission_max_pressure: Some(0.5),
            ..RuntimeConfig::matching(&config)
        });
        let first = rt.submit(ReconJob::new("fill", config)).unwrap();
        let _ = first.wait();
        assert!(rt.store_pressure() > 0.5, "store never saturated");
        match rt.submit(ReconJob::new("turned-away", config)) {
            Err(AdmissionError::StorePressure { pressure, limit }) => {
                assert!(pressure > limit);
            }
            Err(e) => panic!("expected StorePressure, got {e}"),
            Ok(_) => panic!("expected StorePressure, got admission"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.store_pressure > 0.5);
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 8,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let h1 = rt.submit(ReconJob::new("a", tiny_config())).unwrap();
        let h2 = rt.submit(ReconJob::new("b", tiny_config())).unwrap();
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(h1.wait_report().expect("drained").name, "a");
        assert_eq!(h2.wait_report().expect("drained").name, "b");
    }

    #[test]
    fn slack_ledger_is_bounded_and_tracks_percentiles() {
        // The ledger's memory is a fixed pair of histograms, however many
        // jobs are decided — no sample vector to cap or sort.
        assert!(std::mem::size_of::<DeadlineLedger>() < 2048);
        let c = Counters::default();
        for i in 0..10_000 {
            c.note_deadline_outcome(i as f64);
        }
        c.note_expired(50.0);
        let ledger = c.deadlines.lock();
        // Outcome counters keep the full history; so does the histogram's
        // sample count.
        assert_eq!(ledger.met, 10_000);
        assert_eq!(ledger.missed, 1);
        assert_eq!(ledger.slack.count(), 10_001);
        // Percentiles are monotone and live within the sampled range; the
        // bucket representative is a lower bound, so p99 of samples up to
        // ~10_000 s cannot exceed the largest sample.
        let p50 = ledger.slack.percentile_seconds(0.50);
        let p90 = ledger.slack.percentile_seconds(0.90);
        let p99 = ledger.slack.percentile_seconds(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 > 0.0 && p99 < 10_000.0);
        // The expiry landed as a negative sample: the distribution's floor
        // is negative (bucket representatives are magnitude lower bounds,
        // so it sits in (-50, 0)).
        let floor = ledger.slack.percentile_seconds(0.0);
        assert!(floor < 0.0 && floor > -50.0);
    }

    #[test]
    fn shutdown_time_rejections_are_counted_for_both_submit_paths() {
        // The old `submit_blocking` lost ShuttingDown rejections from
        // `RuntimeStats::rejected` (the `?` returned before the counter);
        // every rejection path must be visible in the stats.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        rt.close();
        assert!(matches!(
            rt.submit_blocking(ReconJob::new("late-blocking", tiny_config())),
            Err(AdmissionError::ShuttingDown)
        ));
        assert!(matches!(
            rt.submit(ReconJob::new("late", tiny_config())),
            Err(AdmissionError::ShuttingDown)
        ));
        let stats = rt.shutdown();
        assert_eq!(
            stats.rejected, 2,
            "shutdown-time rejections must be counted on both submit paths"
        );
        assert_eq!(stats.submitted, 0);
    }
}
