//! The runtime: a fixed worker pool multiplexing reconstruction jobs over
//! one shared, sharded memoization store.

use crate::job::{JobReport, ReconJob};
use crate::queue::{AdmissionError, JobQueue, QueuedJob};
use crate::stats::RuntimeStats;
use mlr_core::MlrPipeline;
use mlr_memo::{
    ConcurrencyGovernor, EncoderConfig, JobId, MemoDbConfig, MemoStore, ParallelStats,
    ShardedMemoDb, DEFAULT_SHARDS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue capacity; submissions beyond it are rejected (admission
    /// control) or block (backpressure), depending on the submit call.
    pub queue_capacity: usize,
    /// Lock stripes of the shared memo store.
    pub shards: usize,
    /// Shared store database configuration (τ threshold, scoping). Jobs keep
    /// their own `MemoConfig`, but the store gates reuse with *this* τ, so
    /// tenants should agree with it.
    pub db: MemoDbConfig,
    /// Shared store key-encoder configuration.
    pub encoder: EncoderConfig,
    /// Seed for the shared encoder.
    pub seed: u64,
    /// Admission control against store pressure: when set, submissions are
    /// rejected with [`AdmissionError::StorePressure`] while the shared
    /// store's tightest capacity cap is more than this utilised (`None`
    /// disables the check; pressure is always 0 for unbounded stores).
    pub admission_max_pressure: Option<f64>,
    /// Default chunk-level threads per job (a job whose own
    /// `MlrConfig::intra_job_threads` asks for more keeps its larger
    /// request). Every thread beyond a job's first is leased from the global
    /// concurrency governor, so `workers × intra_job_threads` can never
    /// oversubscribe [`RuntimeConfig::core_budget`].
    pub intra_job_threads: usize,
    /// Total cores the runtime may occupy: each worker owns one, and the
    /// remainder forms the governor's pool of spare cores for chunk-level
    /// threads. Defaults to the machine's available parallelism.
    pub core_budget: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            queue_capacity: 32,
            shards: DEFAULT_SHARDS,
            db: MemoDbConfig::default(),
            encoder: EncoderConfig {
                input_grid: 8,
                conv1_filters: 4,
                conv2_filters: 8,
                embedding_dim: 32,
                learning_rate: 1e-3,
            },
            seed: 7,
            admission_max_pressure: None,
            intra_job_threads: 1,
            core_budget: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl RuntimeConfig {
    /// Aligns the store's τ, capacity budget, eviction policy and encoder
    /// seed with a job configuration, so a single job run through the
    /// runtime behaves exactly like `MlrPipeline::run_memoized` (the
    /// determinism contract the tests pin) — bounded or not.
    pub fn matching(config: &mlr_core::MlrConfig) -> Self {
        Self {
            db: MemoDbConfig {
                tau: config.memo.tau,
                budget: config.memo.budget,
                eviction: config.memo.eviction,
                ..Default::default()
            },
            seed: config.problem.seed,
            ..Default::default()
        }
    }
}

/// Handle to a submitted job; resolves to its [`JobReport`].
pub struct JobHandle {
    id: JobId,
    name: String,
    rx: Receiver<JobReport>,
}

impl JobHandle {
    /// The runtime-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the job completes.
    ///
    /// # Panics
    /// Panics if the runtime was torn down without running the job, or if
    /// the job itself panicked (see [`JobHandle::try_wait`] for the
    /// non-panicking variant).
    pub fn wait(self) -> JobReport {
        self.rx
            .recv()
            .expect("runtime dropped the job without a result")
    }

    /// Blocks until the job completes; returns `None` when the job panicked
    /// or the runtime was torn down without running it.
    pub fn try_wait(self) -> Option<JobReport> {
        self.rx.recv().ok()
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    queue_ns_total: AtomicU64,
    queue_ns_max: AtomicU64,
    busy_ns_total: AtomicU64,
    /// Aggregate of every finished job's chunk-scheduler statistics (the
    /// per-job parallel efficiency the runtime reports).
    parallel: Mutex<ParallelStats>,
}

/// The multi-tenant reconstruction runtime.
///
/// Jobs enter a bounded priority queue; a fixed pool of worker threads pops
/// them and runs the full memoized ADMM reconstruction, every executor
/// sharing one [`ShardedMemoDb`]. Chunk-level USFFT kernels inside a job
/// fan out through the rayon scope-based data-parallel layer, so the two
/// parallelism grains compose: jobs across workers, chunk kernels within a
/// job.
pub struct Runtime {
    queue: Arc<JobQueue>,
    store: Arc<ShardedMemoDb>,
    counters: Arc<Counters>,
    governor: Arc<ConcurrencyGovernor>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    admission_max_pressure: Option<f64>,
    next_job: AtomicU64,
    started: Instant,
}

impl Runtime {
    /// Starts a runtime with a fresh shared store.
    pub fn new(config: RuntimeConfig) -> Self {
        let store = Arc::new(ShardedMemoDb::with_shards(
            config.db,
            config.encoder,
            config.seed,
            config.shards,
        ));
        Self::with_store(config, store)
    }

    /// Starts a runtime over an existing (possibly pre-warmed) store.
    pub fn with_store(config: RuntimeConfig, store: Arc<ShardedMemoDb>) -> Self {
        assert!(config.workers > 0, "worker count must be positive");
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let counters = Arc::new(Counters::default());
        // Each worker owns one core of the budget; whatever is left over is
        // the governor's pool of spare cores for chunk-level threads.
        let governor = ConcurrencyGovernor::for_pool(config.core_budget, config.workers);
        let intra_job_threads = config.intra_job_threads.max(1);
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let counters = Arc::clone(&counters);
                let governor = Arc::clone(&governor);
                std::thread::Builder::new()
                    .name(format!("mlr-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&queue, &store, &counters, &governor, intra_job_threads)
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            queue,
            store,
            counters,
            governor,
            workers,
            worker_count: config.workers,
            admission_max_pressure: config.admission_max_pressure,
            // Job 0 is reserved for standalone executors.
            next_job: AtomicU64::new(1),
            started: Instant::now(),
        }
    }

    /// The shared memo store.
    pub fn store(&self) -> &Arc<ShardedMemoDb> {
        &self.store
    }

    /// The global concurrency governor arbitrating spare cores between the
    /// in-flight jobs' chunk-level threads.
    pub fn governor(&self) -> &Arc<ConcurrencyGovernor> {
        &self.governor
    }

    /// Utilisation of the shared store's tightest capacity cap in `[0, 1]`
    /// (0 when the store is unbounded) — what pressure-aware admission
    /// consults.
    pub fn store_pressure(&self) -> f64 {
        self.store.pressure()
    }

    /// Rejects the submission when the shared store is past the configured
    /// pressure limit — admitting more work would only churn the store.
    fn check_store_pressure(&self) -> Result<(), AdmissionError> {
        if let Some(limit) = self.admission_max_pressure {
            let pressure = self.store.pressure();
            if pressure > limit {
                return Err(AdmissionError::StorePressure { pressure, limit });
            }
        }
        Ok(())
    }

    /// Non-blocking submission with admission control: rejects with
    /// [`AdmissionError::QueueFull`] when the queue is at capacity, or with
    /// [`AdmissionError::StorePressure`] when the shared store is past the
    /// configured pressure limit.
    pub fn submit(&self, job: ReconJob) -> Result<JobHandle, AdmissionError> {
        if let Err(e) = self.check_store_pressure() {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        let name = job.name.clone();
        let (tx, rx) = channel();
        match self.queue.try_push(id, job, tx) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { id, name, rx })
            }
            Err(e) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Blocking submission: applies backpressure to the producer until a
    /// queue slot frees up. Store pressure still rejects (blocking would
    /// not relieve it — the store only drains by eviction).
    pub fn submit_blocking(&self, job: ReconJob) -> Result<JobHandle, AdmissionError> {
        if let Err(e) = self.check_store_pressure() {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        let name = job.name.clone();
        let (tx, rx) = channel();
        self.queue.push_blocking(id, job, tx)?;
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(JobHandle { id, name, rx })
    }

    /// A snapshot of the runtime statistics.
    pub fn stats(&self) -> RuntimeStats {
        let completed = self.counters.completed.load(Ordering::Relaxed);
        let failed = self.counters.failed.load(Ordering::Relaxed);
        let finished = completed + failed;
        let queue_ns_total = self.counters.queue_ns_total.load(Ordering::Relaxed);
        RuntimeStats {
            workers: self.worker_count,
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            completed,
            failed,
            queued: self.queue.len(),
            wall_seconds: self.started.elapsed().as_secs_f64(),
            busy_seconds: self.counters.busy_ns_total.load(Ordering::Relaxed) as f64 * 1e-9,
            queue_seconds_mean: if finished == 0 {
                0.0
            } else {
                queue_ns_total as f64 * 1e-9 / finished as f64
            },
            queue_seconds_max: self.counters.queue_ns_max.load(Ordering::Relaxed) as f64 * 1e-9,
            store_pressure: self.store.pressure(),
            store: self.store.stats(),
            parallel: *self
                .counters
                .parallel
                .lock()
                .expect("parallel stats lock poisoned"),
        }
    }

    /// The configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Drains the queue, stops the workers and returns the final statistics.
    /// Already-admitted jobs still run to completion.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    queue: &JobQueue,
    store: &Arc<ShardedMemoDb>,
    counters: &Counters,
    governor: &Arc<ConcurrencyGovernor>,
    intra_job_threads: usize,
) {
    while let Some(q) = queue.pop() {
        let queue_ns = q.enqueued.elapsed().as_nanos() as u64;
        let start = Instant::now();
        // Contain per-job panics (bad configs assert deep in the pipeline):
        // one misbehaving tenant must not kill the worker and starve every
        // queued job behind it. The panicked job's responder is dropped, so
        // its handle observes the failure; the worker lives on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(q, store, counters, governor, intra_job_threads, queue_ns)
        }));
        let busy_ns = start.elapsed().as_nanos() as u64;
        counters.busy_ns_total.fetch_add(busy_ns, Ordering::Relaxed);
        // Queue-latency accounting lands together with completed/failed so
        // mid-run snapshots divide matching job sets.
        counters
            .queue_ns_total
            .fetch_add(queue_ns, Ordering::Relaxed);
        counters.queue_ns_max.fetch_max(queue_ns, Ordering::Relaxed);
        match outcome {
            Ok(()) => counters.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => counters.failed.fetch_add(1, Ordering::Relaxed),
        };
    }
}

fn run_job(
    q: QueuedJob,
    store: &Arc<ShardedMemoDb>,
    counters: &Counters,
    governor: &Arc<ConcurrencyGovernor>,
    intra_job_threads: usize,
    queue_ns: u64,
) {
    let start = Instant::now();
    // The runtime's default chunk parallelism applies unless the job itself
    // asks for more; either way every thread beyond the first is leased from
    // the shared governor, so workers × threads stays within the core budget.
    let mut config = q.job.config;
    config.intra_job_threads = config.intra_job_threads.max(intra_job_threads);
    let pipeline = MlrPipeline::new(config);
    let shared: Arc<dyn MemoStore> = Arc::clone(store) as Arc<dyn MemoStore>;
    let (result, executor) =
        pipeline.run_memoized_governed(shared, q.id, Some(Arc::clone(governor)));
    let busy_ns = start.elapsed().as_nanos() as u64;

    let stats = executor.stats();
    let parallel = executor.parallel_stats();
    counters
        .parallel
        .lock()
        .expect("parallel stats lock poisoned")
        .merge(&parallel);
    let report = JobReport {
        job: q.id,
        name: q.job.name,
        reconstruction: result.reconstruction,
        loss: result.history.loss_series(),
        avoided_fraction: stats.total().avoided_fraction(),
        memo: stats,
        cache_hit_rate: executor.cache_stats().hit_rate(),
        parallel,
        queue_seconds: queue_ns as f64 * 1e-9,
        run_seconds: busy_ns as f64 * 1e-9,
    };
    // The submitter may have dropped the handle; the job still ran and its
    // entries still benefit every other tenant of the store.
    let _ = q.responder.send(report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use mlr_core::MlrConfig;

    fn tiny_config() -> MlrConfig {
        MlrConfig::quick(12, 8).with_iterations(4)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let handle = rt.submit(ReconJob::new("solo", tiny_config())).unwrap();
        let report = handle.wait();
        assert_eq!(report.job, 1);
        assert_eq!(report.name, "solo");
        assert_eq!(report.loss.len(), 4);
        assert!(report.run_seconds > 0.0);
        assert!(report
            .reconstruction
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.submitted, 1);
        assert!(stats.store.queries > 0);
    }

    #[test]
    fn concurrent_jobs_share_the_store() {
        let config = tiny_config();
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            ..RuntimeConfig::matching(&config)
        });
        let handles: Vec<_> = (0..4)
            .map(|i| {
                rt.submit(ReconJob::new(format!("job-{i}"), config))
                    .unwrap()
            })
            .collect();
        let reports: Vec<_> = handles.into_iter().map(JobHandle::wait).collect();
        assert_eq!(reports.len(), 4);
        // Identical samples: later jobs must reuse earlier jobs' entries.
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 4);
        assert!(
            stats.store.cross_job_hits > 0,
            "no cross-job reuse despite identical samples: {:?}",
            stats.store
        );
        assert!(stats.cross_job_hit_rate() > 0.0);
        assert!(stats.utilisation() > 0.0);
    }

    #[test]
    fn admission_control_applies_backpressure() {
        // One worker, capacity-1 queue: flooding submissions must reject.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 1,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let mut handles = Vec::new();
        let mut rejected = 0usize;
        for i in 0..12 {
            match rt.submit(
                ReconJob::new(format!("flood-{i}"), tiny_config()).with_priority(Priority::Batch),
            ) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(rejected > 0, "capacity-1 queue never pushed back");
        for h in handles {
            let _ = h.wait();
        }
        let stats = rt.shutdown();
        assert_eq!(stats.rejected as usize, rejected);
        assert_eq!(stats.submitted + stats.rejected, 12);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        // An invalid configuration asserts deep inside the pipeline; the
        // worker must survive and keep serving the jobs queued behind it.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let bad = rt
            .submit(ReconJob::new("bad", MlrConfig::quick(0, 0)))
            .unwrap();
        let good = rt.submit(ReconJob::new("good", tiny_config())).unwrap();
        assert!(
            bad.try_wait().is_none(),
            "panicked job must not yield a report"
        );
        let report = good.try_wait().expect("queued job must still run");
        assert_eq!(report.name, "good");
        let stats = rt.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn store_pressure_gates_admission() {
        use mlr_memo::{CapacityBudget, EvictionPolicyKind};
        // A one-entry budget saturates after the first job; with a pressure
        // limit configured, the next submission must be turned away.
        let config =
            tiny_config().with_memo_budget(CapacityBudget::entries(1), EvictionPolicyKind::Fifo);
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            admission_max_pressure: Some(0.5),
            ..RuntimeConfig::matching(&config)
        });
        let first = rt.submit(ReconJob::new("fill", config)).unwrap();
        let _ = first.wait();
        assert!(rt.store_pressure() > 0.5, "store never saturated");
        match rt.submit(ReconJob::new("turned-away", config)) {
            Err(AdmissionError::StorePressure { pressure, limit }) => {
                assert!(pressure > limit);
            }
            Err(e) => panic!("expected StorePressure, got {e}"),
            Ok(_) => panic!("expected StorePressure, got admission"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.store_pressure > 0.5);
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 8,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let h1 = rt.submit(ReconJob::new("a", tiny_config())).unwrap();
        let h2 = rt.submit(ReconJob::new("b", tiny_config())).unwrap();
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(h1.wait().name, "a");
        assert_eq!(h2.wait().name, "b");
    }
}
