//! The runtime: a fixed worker pool multiplexing reconstruction jobs over
//! one shared, sharded memoization store.
//!
//! Every admitted job is tracked by a ticket (see [`crate::handle`]) that
//! resolves to a typed [`JobStatus`]. Workers check a popped entry's cancel
//! token and deadline *before* running it — a cancelled or expired queued
//! job is reported and skipped, never executed — and in-flight jobs stop
//! cooperatively at ADMM iteration boundaries through the same token.

use crate::handle::{JobHandle, JobStatus, Ticket};
use crate::job::{JobReport, ReconJob};
use crate::queue::{AdmissionError, JobQueue, QueuedJob};
use crate::stats::{DeadlineStats, RuntimeStats};
use mlr_core::{CancelToken, MlrPipeline, StopCause};
use mlr_memo::{
    ConcurrencyGovernor, EncoderConfig, JobId, MemoDbConfig, MemoStore, ParallelStats,
    ShardedMemoDb, DEFAULT_SHARDS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue capacity; submissions beyond it are rejected (admission
    /// control) or block (backpressure), depending on the submit call.
    pub queue_capacity: usize,
    /// Lock stripes of the shared memo store.
    pub shards: usize,
    /// Shared store database configuration (τ threshold, scoping). Jobs keep
    /// their own `MemoConfig`, but the store gates reuse with *this* τ, so
    /// tenants should agree with it.
    pub db: MemoDbConfig,
    /// Shared store key-encoder configuration.
    pub encoder: EncoderConfig,
    /// Seed for the shared encoder.
    pub seed: u64,
    /// Admission control against store pressure: when set, submissions are
    /// rejected with [`AdmissionError::StorePressure`] while the shared
    /// store's tightest capacity cap is more than this utilised (`None`
    /// disables the check; pressure is always 0 for unbounded stores).
    pub admission_max_pressure: Option<f64>,
    /// Default chunk-level threads per job (a job whose own
    /// `MlrConfig::intra_job_threads` asks for more keeps its larger
    /// request). Every thread beyond a job's first is leased from the global
    /// concurrency governor, so `workers × intra_job_threads` can never
    /// oversubscribe [`RuntimeConfig::core_budget`].
    pub intra_job_threads: usize,
    /// Total cores the runtime may occupy: each worker owns one, and the
    /// remainder forms the governor's pool of spare cores for chunk-level
    /// threads. Defaults to the machine's available parallelism.
    pub core_budget: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            queue_capacity: 32,
            shards: DEFAULT_SHARDS,
            db: MemoDbConfig::default(),
            encoder: EncoderConfig {
                input_grid: 8,
                conv1_filters: 4,
                conv2_filters: 8,
                embedding_dim: 32,
                learning_rate: 1e-3,
            },
            seed: 7,
            admission_max_pressure: None,
            intra_job_threads: 1,
            core_budget: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl RuntimeConfig {
    /// Aligns the store's τ, capacity budget, eviction policy and encoder
    /// seed with a job configuration, so a single job run through the
    /// runtime behaves exactly like `MlrPipeline::run_memoized` (the
    /// determinism contract the tests pin) — bounded or not.
    pub fn matching(config: &mlr_core::MlrConfig) -> Self {
        Self {
            db: MemoDbConfig {
                tau: config.memo.tau,
                budget: config.memo.budget,
                eviction: config.memo.eviction,
                ..Default::default()
            },
            seed: config.problem.seed,
            ..Default::default()
        }
    }
}

/// Signed slack of `deadline` seen from `at`: positive while there is time
/// left, negative once the deadline has passed.
pub(crate) fn slack_seconds(deadline: Instant, at: Instant) -> f64 {
    if at <= deadline {
        deadline.duration_since(at).as_secs_f64()
    } else {
        -at.duration_since(deadline).as_secs_f64()
    }
}

/// Cap on retained slack samples: the percentiles cover the most recent
/// `SLACK_SAMPLE_CAP` decided jobs, so a long-lived front-end neither grows
/// without bound nor stalls workers sorting an ever-larger ledger.
const SLACK_SAMPLE_CAP: usize = 4096;

/// Deadline bookkeeping behind [`RuntimeStats::deadline`]: decided outcomes
/// plus a bounded ring of the decided jobs' signed slack samples (for the
/// percentiles).
#[derive(Default)]
pub(crate) struct DeadlineLedger {
    pub(crate) submitted: u64,
    pub(crate) met: u64,
    pub(crate) missed: u64,
    slack_seconds: Vec<f64>,
    /// Ring cursor once the sample buffer is full.
    next_slot: usize,
}

impl DeadlineLedger {
    fn push_slack(&mut self, slack_seconds: f64) {
        if self.slack_seconds.len() < SLACK_SAMPLE_CAP {
            self.slack_seconds.push(slack_seconds);
        } else {
            self.slack_seconds[self.next_slot] = slack_seconds;
            self.next_slot = (self.next_slot + 1) % SLACK_SAMPLE_CAP;
        }
    }

    pub(crate) fn slack_samples(&self) -> &[f64] {
        &self.slack_seconds
    }
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) queue_ns_total: AtomicU64,
    /// Jobs whose queue latency landed in `queue_ns_total` — every popped
    /// entry that actually ran, whatever its terminal status — so the mean
    /// divides a matching sample set.
    pub(crate) queue_samples: AtomicU64,
    pub(crate) queue_ns_max: AtomicU64,
    pub(crate) busy_ns_total: AtomicU64,
    /// Aggregate of every finished job's chunk-scheduler statistics (the
    /// per-job parallel efficiency the runtime reports).
    pub(crate) parallel: Mutex<ParallelStats>,
    pub(crate) deadlines: Mutex<DeadlineLedger>,
}

impl Counters {
    /// Counts a rejected submission — every rejection path must land here so
    /// `RuntimeStats::rejected` never under-reports.
    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// An expired job (skipped in the queue or stopped mid-run): counted as
    /// a deadline miss with its (negative) slack sample.
    pub(crate) fn note_expired(&self, late_seconds: f64) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        let mut ledger = self.deadlines.lock().expect("deadline ledger poisoned");
        ledger.missed += 1;
        ledger.push_slack(-late_seconds);
    }

    /// A completed job that carried a deadline: met when it finished with
    /// non-negative slack, missed otherwise (it ran to completion late).
    pub(crate) fn note_deadline_outcome(&self, slack_seconds: f64) {
        let mut ledger = self.deadlines.lock().expect("deadline ledger poisoned");
        if slack_seconds >= 0.0 {
            ledger.met += 1;
        } else {
            ledger.missed += 1;
        }
        ledger.push_slack(slack_seconds);
    }
}

/// The multi-tenant reconstruction runtime.
///
/// Jobs enter a bounded priority queue; a fixed pool of worker threads pops
/// them and runs the full memoized ADMM reconstruction, every executor
/// sharing one [`ShardedMemoDb`]. Chunk-level USFFT kernels inside a job
/// fan out through the rayon scope-based data-parallel layer, so the two
/// parallelism grains compose: jobs across workers, chunk kernels within a
/// job.
pub struct Runtime {
    queue: Arc<JobQueue>,
    store: Arc<ShardedMemoDb>,
    counters: Arc<Counters>,
    governor: Arc<ConcurrencyGovernor>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    admission_max_pressure: Option<f64>,
    next_job: AtomicU64,
    started: Instant,
}

impl Runtime {
    /// Starts a runtime with a fresh shared store.
    pub fn new(config: RuntimeConfig) -> Self {
        let store = Arc::new(ShardedMemoDb::with_shards(
            config.db,
            config.encoder,
            config.seed,
            config.shards,
        ));
        Self::with_store(config, store)
    }

    /// Starts a runtime over an existing (possibly pre-warmed) store.
    pub fn with_store(config: RuntimeConfig, store: Arc<ShardedMemoDb>) -> Self {
        assert!(config.workers > 0, "worker count must be positive");
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let counters = Arc::new(Counters::default());
        // Each worker owns one core of the budget; whatever is left over is
        // the governor's pool of spare cores for chunk-level threads.
        let governor = ConcurrencyGovernor::for_pool(config.core_budget, config.workers);
        let intra_job_threads = config.intra_job_threads.max(1);
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let counters = Arc::clone(&counters);
                let governor = Arc::clone(&governor);
                std::thread::Builder::new()
                    .name(format!("mlr-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&queue, &store, &counters, &governor, intra_job_threads)
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            queue,
            store,
            counters,
            governor,
            workers,
            worker_count: config.workers,
            admission_max_pressure: config.admission_max_pressure,
            // Job 0 is reserved for standalone executors.
            next_job: AtomicU64::new(1),
            started: Instant::now(),
        }
    }

    /// The shared memo store.
    pub fn store(&self) -> &Arc<ShardedMemoDb> {
        &self.store
    }

    /// The global concurrency governor arbitrating spare cores between the
    /// in-flight jobs' chunk-level threads.
    pub fn governor(&self) -> &Arc<ConcurrencyGovernor> {
        &self.governor
    }

    /// Utilisation of the shared store's tightest capacity cap in `[0, 1]`
    /// (0 when the store is unbounded) — what pressure-aware admission
    /// consults.
    pub fn store_pressure(&self) -> f64 {
        self.store.pressure()
    }

    /// Rejects the submission when the shared store is past the configured
    /// pressure limit — admitting more work would only churn the store.
    fn check_store_pressure(&self) -> Result<(), AdmissionError> {
        if let Some(limit) = self.admission_max_pressure {
            let pressure = self.store.pressure();
            if pressure > limit {
                return Err(AdmissionError::StorePressure { pressure, limit });
            }
        }
        Ok(())
    }

    /// The one admission path: every rejection — store pressure, queue full,
    /// shutting down, blocking or not — is counted in
    /// [`RuntimeStats::rejected`], and the job id is allocated by the queue
    /// only *after* admission succeeds (rejected submissions never consume
    /// an id, keeping the admitted-id sequence dense).
    pub(crate) fn admit(
        &self,
        job: ReconJob,
        deadline: Option<Instant>,
        blocking: bool,
    ) -> Result<JobHandle, AdmissionError> {
        if let Err(e) = self.check_store_pressure() {
            self.counters.note_rejected();
            return Err(e);
        }
        let name = job.name.clone();
        // The token is the single source of truth for both cancellation and
        // the absolute deadline: queue-skip, mid-run expiry and the handle
        // all read it from here.
        let token = match deadline {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::new(),
        };
        let ticket = Arc::new(Ticket::new(token));
        // Count the deadline submission *before* the push: the instant the
        // entry is in the queue a worker may pop and decide it, and a stats
        // snapshot must never see more decided deadline jobs than submitted
        // ones. Rolled back below if admission fails.
        if deadline.is_some() {
            self.counters
                .deadlines
                .lock()
                .expect("deadline ledger poisoned")
                .submitted += 1;
        }
        let pushed = if blocking {
            self.queue
                .push_blocking(&self.next_job, job, Arc::clone(&ticket))
        } else {
            self.queue
                .try_push(&self.next_job, job, Arc::clone(&ticket))
        };
        match pushed {
            Ok(id) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle {
                    id,
                    name,
                    ticket,
                    queue: Arc::clone(&self.queue),
                    counters: Arc::clone(&self.counters),
                })
            }
            Err(e) => {
                if deadline.is_some() {
                    self.counters
                        .deadlines
                        .lock()
                        .expect("deadline ledger poisoned")
                        .submitted -= 1;
                }
                self.counters.note_rejected();
                Err(e)
            }
        }
    }

    /// Non-blocking submission with admission control: rejects with
    /// [`AdmissionError::QueueFull`] when the queue is at capacity, or with
    /// [`AdmissionError::StorePressure`] when the shared store is past the
    /// configured pressure limit.
    pub fn submit(&self, job: ReconJob) -> Result<JobHandle, AdmissionError> {
        self.admit(job, None, false)
    }

    /// Blocking submission: applies backpressure to the producer until a
    /// queue slot frees up. Store pressure still rejects (blocking would
    /// not relieve it — the store only drains by eviction).
    pub fn submit_blocking(&self, job: ReconJob) -> Result<JobHandle, AdmissionError> {
        self.admit(job, None, true)
    }

    /// A snapshot of the runtime statistics.
    pub fn stats(&self) -> RuntimeStats {
        let completed = self.counters.completed.load(Ordering::Relaxed);
        let failed = self.counters.failed.load(Ordering::Relaxed);
        let queue_samples = self.counters.queue_samples.load(Ordering::Relaxed);
        let queue_ns_total = self.counters.queue_ns_total.load(Ordering::Relaxed);
        let deadline = {
            let ledger = self
                .counters
                .deadlines
                .lock()
                .expect("deadline ledger poisoned");
            let mut slack = ledger.slack_samples().to_vec();
            slack.sort_by(f64::total_cmp);
            DeadlineStats {
                submitted: ledger.submitted,
                met: ledger.met,
                missed: ledger.missed,
                slack_p50_seconds: percentile(&slack, 0.50),
                slack_p90_seconds: percentile(&slack, 0.90),
                slack_p99_seconds: percentile(&slack, 0.99),
            }
        };
        RuntimeStats {
            workers: self.worker_count,
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            completed,
            failed,
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            expired: self.counters.expired.load(Ordering::Relaxed),
            queued: self.queue.len(),
            wall_seconds: self.started.elapsed().as_secs_f64(),
            busy_seconds: self.counters.busy_ns_total.load(Ordering::Relaxed) as f64 * 1e-9,
            queue_seconds_mean: if queue_samples == 0 {
                0.0
            } else {
                queue_ns_total as f64 * 1e-9 / queue_samples as f64
            },
            queue_seconds_max: self.counters.queue_ns_max.load(Ordering::Relaxed) as f64 * 1e-9,
            store_pressure: self.store.pressure(),
            store: self.store.stats(),
            deadline,
            parallel: *self
                .counters
                .parallel
                .lock()
                .expect("parallel stats lock poisoned"),
        }
    }

    /// The configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Enters drain mode: no further submissions are admitted (they reject
    /// with [`AdmissionError::ShuttingDown`], and are counted as rejected),
    /// while already-admitted jobs keep running to completion. Workers stay
    /// alive until [`Runtime::shutdown`] or drop.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Drains the queue, stops the workers and returns the final statistics.
    /// Already-admitted jobs still run to completion.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let at = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[at.min(sorted.len() - 1)]
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

fn worker_loop(
    queue: &JobQueue,
    store: &Arc<ShardedMemoDb>,
    counters: &Counters,
    governor: &Arc<ConcurrencyGovernor>,
    intra_job_threads: usize,
) {
    while let Some(q) = queue.pop() {
        let QueuedJob {
            id,
            job,
            enqueued,
            ticket,
            ..
        } = q;
        let deadline = ticket.token.deadline();
        // Cancelled while queued but popped before the handle could remove
        // it: the job never runs. Checked before the deadline so that, as
        // everywhere else, cancellation wins over expiry when both apply —
        // a submitter-cancelled job must not inflate the deadline-miss rate.
        if ticket.token.is_cancelled() {
            counters.note_cancelled();
            ticket.resolve(JobStatus::Cancelled {
                while_running: false,
                completed_iterations: 0,
            });
            continue;
        }
        // Deadline-aware pop: an entry that expired while queued is reported
        // and skipped — it never runs (and never touches the store).
        let now = Instant::now();
        if let Some(at) = deadline {
            if now >= at {
                let late = -slack_seconds(at, now);
                counters.note_expired(late);
                ticket.resolve(JobStatus::Expired {
                    while_running: false,
                    late_seconds: late,
                    completed_iterations: 0,
                });
                continue;
            }
        }

        ticket.set_running();
        let queue_ns = enqueued.elapsed().as_nanos() as u64;
        let token = ticket.token.clone();
        let start = Instant::now();
        // Contain per-job panics (bad configs assert deep in the pipeline):
        // one misbehaving tenant must not kill the worker and starve every
        // queued job behind it. The panicked job resolves `Failed`; the
        // worker lives on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(
                id,
                job,
                token,
                store,
                counters,
                governor,
                intra_job_threads,
                queue_ns,
            )
        }));
        let busy_ns = start.elapsed().as_nanos() as u64;
        counters.busy_ns_total.fetch_add(busy_ns, Ordering::Relaxed);
        // Queue-latency accounting lands together with its own sample count
        // (cancelled/expired mid-run jobs waited in the queue too), so the
        // mean always divides a matching sample set.
        counters
            .queue_ns_total
            .fetch_add(queue_ns, Ordering::Relaxed);
        counters.queue_samples.fetch_add(1, Ordering::Relaxed);
        counters.queue_ns_max.fetch_max(queue_ns, Ordering::Relaxed);
        let status = match outcome {
            Ok(status) => status,
            Err(payload) => JobStatus::Failed {
                error: panic_message(payload),
            },
        };
        match &status {
            JobStatus::Completed(_) => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                if let Some(at) = deadline {
                    counters.note_deadline_outcome(slack_seconds(at, Instant::now()));
                }
            }
            JobStatus::Failed { .. } => {
                counters.failed.fetch_add(1, Ordering::Relaxed);
            }
            JobStatus::Cancelled { .. } => counters.note_cancelled(),
            JobStatus::Expired { late_seconds, .. } => counters.note_expired(*late_seconds),
        }
        ticket.resolve(status);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_job(
    id: JobId,
    job: ReconJob,
    token: CancelToken,
    store: &Arc<ShardedMemoDb>,
    counters: &Counters,
    governor: &Arc<ConcurrencyGovernor>,
    intra_job_threads: usize,
    queue_ns: u64,
) -> JobStatus {
    let start = Instant::now();
    // The runtime's default chunk parallelism applies unless the job itself
    // asks for more; either way every thread beyond the first is leased from
    // the shared governor, so workers × threads stays within the core budget.
    let mut config = job.config;
    config.intra_job_threads = config.intra_job_threads.max(intra_job_threads);
    let pipeline = MlrPipeline::new(config);
    let shared: Arc<dyn MemoStore> = Arc::clone(store) as Arc<dyn MemoStore>;
    let (result, executor) =
        pipeline.run_memoized_serving(shared, id, Some(Arc::clone(governor)), &token);
    let busy_ns = start.elapsed().as_nanos() as u64;

    let stats = executor.stats();
    let parallel = executor.parallel_stats();
    counters
        .parallel
        .lock()
        .expect("parallel stats lock poisoned")
        .merge(&parallel);
    let completed_iterations = result.history.records().len();
    match result.stopped {
        Some(StopCause::Cancelled) => JobStatus::Cancelled {
            while_running: true,
            completed_iterations,
        },
        Some(StopCause::DeadlineExpired) => {
            let late = token
                .deadline()
                .map(|at| -slack_seconds(at, Instant::now()))
                .unwrap_or(0.0)
                .max(0.0);
            JobStatus::Expired {
                while_running: true,
                late_seconds: late,
                completed_iterations,
            }
        }
        None => JobStatus::Completed(Arc::new(JobReport {
            job: id,
            name: job.name,
            reconstruction: result.reconstruction,
            loss: result.history.loss_series(),
            avoided_fraction: stats.total().avoided_fraction(),
            memo: stats,
            cache_hit_rate: executor.cache_stats().hit_rate(),
            parallel,
            queue_seconds: queue_ns as f64 * 1e-9,
            run_seconds: busy_ns as f64 * 1e-9,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use mlr_core::MlrConfig;

    fn tiny_config() -> MlrConfig {
        MlrConfig::quick(12, 8).with_iterations(4)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let handle = rt.submit(ReconJob::new("solo", tiny_config())).unwrap();
        let report = handle.wait_report().expect("job completes");
        assert_eq!(report.job, 1);
        assert_eq!(report.name, "solo");
        assert_eq!(report.loss.len(), 4);
        assert!(report.run_seconds > 0.0);
        assert!(report
            .reconstruction
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.expired, 0);
        assert!(stats.store.queries > 0);
    }

    #[test]
    fn concurrent_jobs_share_the_store() {
        let config = tiny_config();
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            ..RuntimeConfig::matching(&config)
        });
        let handles: Vec<_> = (0..4)
            .map(|i| {
                rt.submit(ReconJob::new(format!("job-{i}"), config))
                    .unwrap()
            })
            .collect();
        let reports: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait_report().expect("job completes"))
            .collect();
        assert_eq!(reports.len(), 4);
        // Identical samples: later jobs must reuse earlier jobs' entries.
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 4);
        assert!(
            stats.store.cross_job_hits > 0,
            "no cross-job reuse despite identical samples: {:?}",
            stats.store
        );
        assert!(stats.cross_job_hit_rate() > 0.0);
        assert!(stats.utilisation() > 0.0);
    }

    #[test]
    fn admission_control_applies_backpressure() {
        // One worker, capacity-1 queue: flooding submissions must reject.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 1,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let mut handles = Vec::new();
        let mut rejected = 0usize;
        for i in 0..12 {
            match rt.submit(
                ReconJob::new(format!("flood-{i}"), tiny_config()).with_priority(Priority::Batch),
            ) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(rejected > 0, "capacity-1 queue never pushed back");
        for h in handles {
            let _ = h.wait();
        }
        let stats = rt.shutdown();
        assert_eq!(stats.rejected as usize, rejected);
        assert_eq!(stats.submitted + stats.rejected, 12);
    }

    #[test]
    fn rejected_submissions_do_not_leak_job_ids() {
        // One worker, capacity-1 queue: the first job is popped immediately,
        // the second fills the slot, and everything after rejects. Rejected
        // submissions must not consume ids — the next admitted job's id is
        // dense with the previous one.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 1,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let a = rt.submit(ReconJob::new("a", tiny_config())).unwrap();
        assert_eq!(a.id(), 1);
        let mut b = None;
        let mut rejections = 0;
        for _ in 0..16 {
            match rt.submit(ReconJob::new("b", tiny_config())) {
                Ok(h) => {
                    b = Some(h);
                    break;
                }
                Err(AdmissionError::QueueFull { .. }) => rejections += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
            // The worker may still be holding "a"; give it a moment.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let b = b.expect("one submission eventually admitted");
        assert_eq!(b.id(), 2, "rejected submissions consumed job ids");
        assert!(a.wait().is_completed());
        assert!(b.wait().is_completed());
        // Wait for b to leave the queue, then the next admit must be id 3.
        let c = loop {
            match rt.submit(ReconJob::new("c", tiny_config())) {
                Ok(h) => break h,
                Err(AdmissionError::QueueFull { .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(5))
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        };
        assert_eq!(c.id(), 3, "id sequence of admitted jobs must stay dense");
        let _ = c.wait();
        let stats = rt.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected as usize, rejections);
    }

    #[test]
    fn panicking_job_resolves_failed_not_a_channel_error() {
        // An invalid configuration asserts deep inside the pipeline; the
        // worker must survive, keep serving the jobs queued behind it, and
        // the submitter must see a typed `Failed` status (not a bare
        // RecvError as in the old channel protocol).
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let bad = rt
            .submit(ReconJob::new("bad", MlrConfig::quick(0, 0)))
            .unwrap();
        let good = rt.submit(ReconJob::new("good", tiny_config())).unwrap();
        match bad.wait() {
            JobStatus::Failed { error } => {
                assert!(!error.is_empty(), "panic message must be captured");
            }
            other => panic!("panicked job must resolve Failed, got {other:?}"),
        }
        let report = good.wait_report().expect("queued job must still run");
        assert_eq!(report.name, "good");
        let stats = rt.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn store_pressure_gates_admission() {
        use mlr_memo::{CapacityBudget, EvictionPolicyKind};
        // A one-entry budget saturates after the first job; with a pressure
        // limit configured, the next submission must be turned away.
        let config =
            tiny_config().with_memo_budget(CapacityBudget::entries(1), EvictionPolicyKind::Fifo);
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            admission_max_pressure: Some(0.5),
            ..RuntimeConfig::matching(&config)
        });
        let first = rt.submit(ReconJob::new("fill", config)).unwrap();
        let _ = first.wait();
        assert!(rt.store_pressure() > 0.5, "store never saturated");
        match rt.submit(ReconJob::new("turned-away", config)) {
            Err(AdmissionError::StorePressure { pressure, limit }) => {
                assert!(pressure > limit);
            }
            Err(e) => panic!("expected StorePressure, got {e}"),
            Ok(_) => panic!("expected StorePressure, got admission"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.store_pressure > 0.5);
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 8,
            ..RuntimeConfig::matching(&tiny_config())
        });
        let h1 = rt.submit(ReconJob::new("a", tiny_config())).unwrap();
        let h2 = rt.submit(ReconJob::new("b", tiny_config())).unwrap();
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(h1.wait_report().expect("drained").name, "a");
        assert_eq!(h2.wait_report().expect("drained").name, "b");
    }

    #[test]
    fn slack_ledger_is_bounded_and_keeps_the_newest_samples() {
        let c = Counters::default();
        for i in 0..(SLACK_SAMPLE_CAP + 100) {
            c.note_deadline_outcome(i as f64);
        }
        let ledger = c.deadlines.lock().unwrap();
        assert_eq!(ledger.slack_samples().len(), SLACK_SAMPLE_CAP);
        // Outcome counters keep the full history even though the sample
        // ring is bounded.
        assert_eq!(ledger.met, (SLACK_SAMPLE_CAP + 100) as u64);
        // The newest sample overwrote an old slot rather than being dropped.
        let newest = (SLACK_SAMPLE_CAP + 99) as f64;
        assert!(ledger.slack_samples().contains(&newest));
    }

    #[test]
    fn shutdown_time_rejections_are_counted_for_both_submit_paths() {
        // The old `submit_blocking` lost ShuttingDown rejections from
        // `RuntimeStats::rejected` (the `?` returned before the counter);
        // every rejection path must be visible in the stats.
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            ..RuntimeConfig::matching(&tiny_config())
        });
        rt.close();
        assert!(matches!(
            rt.submit_blocking(ReconJob::new("late-blocking", tiny_config())),
            Err(AdmissionError::ShuttingDown)
        ));
        assert!(matches!(
            rt.submit(ReconJob::new("late", tiny_config())),
            Err(AdmissionError::ShuttingDown)
        ));
        let stats = rt.shutdown();
        assert_eq!(
            stats.rejected, 2,
            "shutdown-time rejections must be counted on both submit paths"
        );
        assert_eq!(stats.submitted, 0);
    }
}
