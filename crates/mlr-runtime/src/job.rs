//! Job descriptions and per-job results.

use mlr_core::MlrConfig;
use mlr_math::Array3;
use mlr_memo::{JobId, MemoStats, ParallelStats};
use serde::{Deserialize, Serialize};

/// Scheduling priority of a job. Higher priorities are popped first; jobs of
/// equal priority run in submission order (FIFO).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Priority {
    /// Background bulk reconstruction; yields to everything else.
    Batch,
    /// The default.
    #[default]
    Normal,
    /// Operator-in-the-loop work (e.g. alignment previews at the beamline).
    Interactive,
}

/// One reconstruction job: a named pipeline configuration (which carries the
/// dataset spec — the runtime simulates the acquisition when the job runs)
/// plus a scheduling priority.
#[derive(Debug, Clone)]
pub struct ReconJob {
    /// Human-readable name, used in reports.
    pub name: String,
    /// Full pipeline configuration (problem, ADMM, memoization, chunking).
    pub config: MlrConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Test hook: panic on the worker thread *outside* the per-job panic
    /// containment, simulating a worker death with this job in flight (the
    /// respawn path has no organic trigger — run_job panics are contained).
    pub(crate) planted_worker_panic: bool,
}

impl ReconJob {
    /// Creates a normal-priority job.
    pub fn new(name: impl Into<String>, config: MlrConfig) -> Self {
        Self {
            name: name.into(),
            config,
            priority: Priority::Normal,
            planted_worker_panic: false,
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Makes the worker that picks this job up die to a panic that escapes
    /// the per-job containment — the fault-injection trigger behind the
    /// worker-respawn tests. The job resolves
    /// [`Failed { retryable: true }`](crate::JobStatus::Failed) and the
    /// pool respawns the worker in place.
    #[doc(hidden)]
    pub fn with_planted_worker_panic(mut self) -> Self {
        self.planted_worker_panic = true;
        self
    }
}

/// The completed result of one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Runtime-assigned job id (also the provenance stamped on every memo
    /// entry this job inserted).
    pub job: JobId,
    /// Job name.
    pub name: String,
    /// The reconstructed volume.
    pub reconstruction: Array3<f64>,
    /// Per-iteration `(iteration, loss)` series.
    pub loss: Vec<(usize, f64)>,
    /// Memoization case statistics for this job's executor.
    pub memo: MemoStats,
    /// Fraction of memoizable FFT invocations this job avoided computing.
    pub avoided_fraction: f64,
    /// This job's compute-node cache hit rate.
    pub cache_hit_rate: f64,
    /// This job's chunk-scheduler statistics (thread grants, measured and
    /// modeled speedup of the intra-job parallel phases).
    pub parallel: ParallelStats,
    /// Time the job spent waiting in the queue.
    pub queue_seconds: f64,
    /// Time the job spent executing on a worker.
    pub run_seconds: f64,
}

/// Compact, serialisable summary of a [`JobReport`] (everything except the
/// volume), for experiment records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSummary {
    /// Job id.
    pub job: JobId,
    /// Job name.
    pub name: String,
    /// Final loss value.
    pub final_loss: f64,
    /// Fraction of memoizable FFT invocations avoided.
    pub avoided_fraction: f64,
    /// Compute-node cache hit rate.
    pub cache_hit_rate: f64,
    /// Queue latency in seconds.
    pub queue_seconds: f64,
    /// Execution time in seconds.
    pub run_seconds: f64,
}

impl JobReport {
    /// The serialisable summary of this report.
    pub fn summary(&self) -> JobSummary {
        JobSummary {
            job: self.job,
            name: self.name.clone(),
            final_loss: self.loss.last().map(|&(_, l)| l).unwrap_or(f64::NAN),
            avoided_fraction: self.avoided_fraction,
            cache_hit_rate: self.cache_hit_rate,
            queue_seconds: self.queue_seconds,
            run_seconds: self.run_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::Interactive > Priority::Normal);
        assert!(Priority::Normal > Priority::Batch);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn job_builder() {
        let job =
            ReconJob::new("sample-a", MlrConfig::quick(12, 8)).with_priority(Priority::Interactive);
        assert_eq!(job.name, "sample-a");
        assert_eq!(job.priority, Priority::Interactive);
    }
}
