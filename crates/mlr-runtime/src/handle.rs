//! Ticket-style job handles with typed terminal statuses.
//!
//! Every admitted submission gets a [`JobHandle`] backed by a shared ticket
//! (std `Mutex` + `Condvar` — no async runtime). The worker that finishes,
//! skips, or crashes the job resolves the ticket exactly once with a
//! [`JobStatus`]; the submitter observes it through `try_wait` /
//! `wait_timeout` / `wait`, and can request cancellation at any time with
//! [`JobHandle::cancel`]. This replaces the old bare `Sender<JobReport>`
//! protocol, where a panicked job or torn-down runtime surfaced to the
//! submitter as an undiagnosable channel `RecvError`.
//!
//! ```text
//!             submit                    pop                resolve(once)
//!   ServeFront ────► ticket: Queued ────► Running ───────► Done
//!                        │                  │                with one of
//!                        │ cancel()         │ cancel()       Completed(report)
//!                        ▼                  ▼                Failed{error}
//!                 removed from queue   token seen at         Cancelled{..}
//!                 → Cancelled(queued)  iteration boundary    Expired{..}
//!                                      → Cancelled(running)
//! ```

use crate::job::JobReport;
use crate::queue::JobQueue;
use crate::runtime::Counters;
use mlr_core::CancelToken;
use mlr_memo::JobId;
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting in the queue.
    Queued,
    /// Picked up by a worker and executing.
    Running,
    /// Reached a terminal [`JobStatus`].
    Done,
}

/// The typed terminal status of a job — what a [`JobHandle`] resolves to.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The job ran all its iterations; the full report is attached. Behind
    /// an `Arc` so the clones handed out by `try_wait`/`wait_timeout` are a
    /// refcount bump, not a copy of the reconstruction volume (which can be
    /// hundreds of MB at paper scale) under the ticket mutex.
    Completed(Arc<JobReport>),
    /// The job panicked while running (e.g. a bad configuration asserting
    /// deep in the pipeline), or was in flight when its worker died. The
    /// pool survived either way; this is the panic message.
    Failed {
        /// The panic payload, stringified.
        error: String,
        /// Whether resubmitting the same job could plausibly succeed:
        /// `false` for a panic inside the job itself (a bad configuration
        /// fails the same way every time), `true` when the job was the
        /// casualty of a worker death and was never at fault.
        retryable: bool,
    },
    /// The job was cancelled: either removed from the queue before any
    /// worker picked it up (`while_running == false`, it never executed), or
    /// stopped cooperatively at an ADMM iteration boundary
    /// (`while_running == true`; the iterations it did run published their
    /// memo entries for every other tenant).
    Cancelled {
        /// `true` when the job had already started executing.
        while_running: bool,
        /// Outer ADMM iterations that ran to completion before the stop.
        completed_iterations: usize,
    },
    /// The job's deadline passed: either while still queued (it is skipped
    /// at pop and never runs) or mid-run (it stops at the next iteration
    /// boundary).
    Expired {
        /// `true` when the deadline fired mid-run rather than in the queue.
        while_running: bool,
        /// How far past the deadline the job was when it was resolved.
        late_seconds: f64,
        /// Outer ADMM iterations that ran to completion before the stop.
        completed_iterations: usize,
    },
}

impl JobStatus {
    /// Whether the job ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed(_))
    }

    /// Whether the job ended cancelled.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, JobStatus::Cancelled { .. })
    }

    /// Whether the job ended past its deadline.
    pub fn is_expired(&self) -> bool {
        matches!(self, JobStatus::Expired { .. })
    }

    /// Whether the job panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobStatus::Failed { .. })
    }

    /// Whether resubmitting the job could plausibly succeed. Only a
    /// [`JobStatus::Failed`] that was the casualty of a worker death is
    /// retryable; a job-level panic, a cancellation and an expired deadline
    /// are all final — a retry loop must never resubmit those.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            JobStatus::Failed {
                retryable: true,
                ..
            }
        )
    }

    /// The completed report, if any.
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            JobStatus::Completed(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the status and returns the completed report, if any
    /// (cloning only when another clone of the status is still alive).
    pub fn into_report(self) -> Option<JobReport> {
        match self {
            JobStatus::Completed(r) => Some(Arc::try_unwrap(r).unwrap_or_else(|r| (*r).clone())),
            _ => None,
        }
    }

    /// Short label for logs and tables.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed(_) => "completed",
            JobStatus::Failed { .. } => "failed",
            JobStatus::Cancelled { .. } => "cancelled",
            JobStatus::Expired { .. } => "expired",
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobStatus::Completed(r) => write!(f, "completed in {:.3}s", r.run_seconds),
            JobStatus::Failed { error, retryable } => {
                let tag = if *retryable { " (retryable)" } else { "" };
                write!(f, "failed{tag}: {error}")
            }
            JobStatus::Cancelled {
                while_running,
                completed_iterations,
            } => write!(
                f,
                "cancelled {} ({completed_iterations} iterations ran)",
                if *while_running {
                    "mid-run"
                } else {
                    "while queued"
                },
            ),
            JobStatus::Expired {
                while_running,
                late_seconds,
                ..
            } => write!(
                f,
                "deadline expired {} ({late_seconds:.3}s late)",
                if *while_running {
                    "mid-run"
                } else {
                    "in the queue"
                },
            ),
        }
    }
}

const PHASE_QUEUED: u8 = 0;
const PHASE_RUNNING: u8 = 1;
const PHASE_DONE: u8 = 2;

/// The shared state behind a [`JobHandle`]: resolved exactly once with a
/// terminal status, plus the cancellation token the solver polls.
pub(crate) struct Ticket {
    status: Mutex<Option<JobStatus>>,
    done: Condvar,
    phase: AtomicU8,
    pub(crate) token: CancelToken,
}

impl Ticket {
    pub(crate) fn new(token: CancelToken) -> Self {
        Self {
            status: Mutex::new(None),
            done: Condvar::new(),
            phase: AtomicU8::new(PHASE_QUEUED),
            token,
        }
    }

    pub(crate) fn phase(&self) -> JobPhase {
        match self.phase.load(Ordering::Acquire) {
            PHASE_QUEUED => JobPhase::Queued,
            PHASE_RUNNING => JobPhase::Running,
            _ => JobPhase::Done,
        }
    }

    /// Marks the job as executing (workers call this right before running).
    pub(crate) fn set_running(&self) {
        // Never move backwards out of Done.
        let _ = self.phase.compare_exchange(
            PHASE_QUEUED,
            PHASE_RUNNING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Resolves the ticket with a terminal status. Idempotent: only the
    /// first resolution sticks (cancel racing a worker is harmless).
    pub(crate) fn resolve(&self, status: JobStatus) -> bool {
        let mut slot = self.status.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(status);
        self.phase.store(PHASE_DONE, Ordering::Release);
        drop(slot);
        self.done.notify_all();
        true
    }
}

/// Ticket-style handle to a submitted job.
///
/// The handle never panics on a crashed job — a panic surfaces as
/// [`JobStatus::Failed`], cancellation as [`JobStatus::Cancelled`], a missed
/// deadline as [`JobStatus::Expired`]. Dropping the handle does not cancel
/// the job: it still runs and its memo entries still benefit every other
/// tenant of the shared store.
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) ticket: Arc<Ticket>,
    pub(crate) queue: Arc<JobQueue>,
    pub(crate) counters: Arc<Counters>,
}

impl JobHandle {
    /// The runtime-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The absolute deadline this job was admitted with, if any (read from
    /// the cancel token — the single source of truth the queue-skip check
    /// and the solver's mid-run expiry check consult too).
    pub fn deadline(&self) -> Option<Instant> {
        self.ticket.token.deadline()
    }

    /// Where the job currently is: queued, running, or done.
    pub fn phase(&self) -> JobPhase {
        self.ticket.phase()
    }

    /// Non-blocking poll: the terminal status if the job is done, else
    /// `None`. The handle stays usable.
    pub fn try_wait(&self) -> Option<JobStatus> {
        self.ticket.status.lock().clone()
    }

    /// Blocks up to `timeout` for the terminal status; `None` on timeout.
    /// The handle stays usable.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout; // mlr-check: allow(wall-clock) — serving deadline: caller-supplied wall timeout
        let mut slot = self.ticket.status.lock();
        loop {
            if let Some(status) = slot.as_ref() {
                return Some(status.clone());
            }
            if self.ticket.done.wait_until(&mut slot, deadline).timed_out() {
                // One final check: a resolution racing the timeout wins.
                return slot.clone();
            }
        }
    }

    /// Blocks until the job reaches a terminal status and returns it.
    pub fn wait(self) -> JobStatus {
        let mut slot = self.ticket.status.lock();
        loop {
            if let Some(status) = slot.take() {
                return status;
            }
            self.ticket.done.wait(&mut slot);
        }
    }

    /// Convenience: blocks for the terminal status and unwraps the report of
    /// a completed job (`None` when the job failed / was cancelled /
    /// expired).
    pub fn wait_report(self) -> Option<JobReport> {
        self.wait().into_report()
    }

    /// Requests cancellation.
    ///
    /// * Still queued → the entry is removed from the queue on the spot (the
    ///   slot frees immediately for backpressured producers) and the ticket
    ///   resolves `Cancelled { while_running: false }`: the job never runs.
    /// * Running → the cancel token trips; the solver stops at the next ADMM
    ///   iteration boundary, flushes the coalescer, and the ticket resolves
    ///   `Cancelled { while_running: true }`. Entries memoized by the
    ///   iterations that did run stay published for other tenants.
    /// * Already terminal → no effect.
    ///
    /// Returns `true` when the request was registered before the job reached
    /// a terminal status (best-effort for running jobs: a job in its final
    /// iteration may still complete).
    pub fn cancel(&self) -> bool {
        if self.ticket.phase() == JobPhase::Done {
            return false;
        }
        self.ticket.token.cancel();
        if let Some(removed) = self.queue.remove(self.id) {
            // Removed before any worker picked it up: resolve right here.
            self.counters.note_cancelled();
            removed.ticket.resolve(JobStatus::Cancelled {
                while_running: false,
                completed_iterations: 0,
            });
            return true;
        }
        self.ticket.phase() != JobPhase::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_resolves_exactly_once() {
        let t = Ticket::new(CancelToken::new());
        assert_eq!(t.phase(), JobPhase::Queued);
        t.set_running();
        assert_eq!(t.phase(), JobPhase::Running);
        assert!(t.resolve(JobStatus::Failed {
            error: "first".into(),
            retryable: false,
        }));
        assert!(!t.resolve(JobStatus::Cancelled {
            while_running: true,
            completed_iterations: 3
        }));
        assert_eq!(t.phase(), JobPhase::Done);
        let slot = t.status.lock();
        match slot.as_ref() {
            Some(JobStatus::Failed { error, .. }) => assert_eq!(error, "first"),
            other => panic!("first resolution must stick, got {other:?}"),
        }
    }

    #[test]
    fn set_running_cannot_resurrect_a_done_ticket() {
        let t = Ticket::new(CancelToken::new());
        t.resolve(JobStatus::Cancelled {
            while_running: false,
            completed_iterations: 0,
        });
        t.set_running();
        assert_eq!(t.phase(), JobPhase::Done);
    }

    #[test]
    fn status_predicates() {
        let completed_like = JobStatus::Failed {
            error: "x".into(),
            retryable: false,
        };
        assert!(completed_like.is_failed());
        assert!(!completed_like.is_completed());
        assert!(completed_like.report().is_none());
        assert!(!completed_like.is_retryable());
        let casualty = JobStatus::Failed {
            error: "worker died".into(),
            retryable: true,
        };
        assert!(casualty.is_retryable());
        assert!(format!("{casualty}").contains("retryable"));
        let cancelled = JobStatus::Cancelled {
            while_running: false,
            completed_iterations: 0,
        };
        assert!(cancelled.is_cancelled());
        assert_eq!(cancelled.label(), "cancelled");
        let expired = JobStatus::Expired {
            while_running: true,
            late_seconds: 0.5,
            completed_iterations: 2,
        };
        assert!(expired.is_expired());
        assert!(format!("{expired}").contains("mid-run"));
    }
}
