//! The deadline-aware serving front-end over the runtime.
//!
//! At a beamline the runtime is a shared facility: many users submit
//! reconstruction requests against one memo store, and those requests carry
//! acquisition-driven deadlines — an alignment preview that arrives after
//! the next scan started is worthless. [`ServeFront`] is the
//! request/response layer for that regime, built from std threads and
//! condvars (no async runtime, no external crates):
//!
//! * every admitted [`ServeRequest`] yields a ticket-style
//!   [`JobHandle`] with `try_wait` / `wait_timeout` /
//!   `wait` / `cancel`;
//! * a request's [`Deadline`] is converted to an absolute instant at
//!   admission and enforced in two places: a job still *queued* past its
//!   deadline is skipped at pop and resolves
//!   [`JobStatus::Expired`](crate::JobStatus) without ever running; a job
//!   *in flight* past its deadline stops cooperatively at the next ADMM
//!   iteration boundary;
//! * cancellation follows the same two-stage semantics (removed from the
//!   queue, or stopped at an iteration boundary with its memo entries kept
//!   published);
//! * [`RuntimeStats::deadline`](crate::RuntimeStats) aggregates met/missed
//!   counts and slack percentiles across all decided jobs.

use crate::handle::JobHandle;
use crate::job::{Priority, ReconJob};
use crate::queue::AdmissionError;
use crate::retry::RetryPolicy;
use crate::runtime::{Runtime, RuntimeConfig};
use crate::stats::RuntimeStats;
use mlr_core::MlrConfig;
use mlr_memo::ShardedMemoDb;
use mlr_telemetry::CounterId;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A completion deadline, expressed as a budget relative to admission time
/// (the natural way a beamline operator states it: "I need this before the
/// next scan, in 90 seconds").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` after the moment of admission.
    pub fn within(budget: Duration) -> Self {
        Self { budget }
    }

    /// A deadline `seconds` (fractional allowed) after admission.
    pub fn within_seconds(seconds: f64) -> Self {
        Self {
            budget: Duration::from_secs_f64(seconds.max(0.0)),
        }
    }

    /// The relative budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    pub(crate) fn starting_now(&self) -> Instant {
        Instant::now() + self.budget // mlr-check: allow(wall-clock) — serving deadline: budget is anchored to wall clock by design
    }
}

/// One serving request: a named pipeline configuration plus scheduling
/// priority and an optional completion deadline.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Human-readable name, used in reports.
    pub name: String,
    /// Full pipeline configuration (problem, ADMM, memoization, chunking).
    pub config: MlrConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Optional completion deadline, relative to admission.
    pub deadline: Option<Deadline>,
}

impl ServeRequest {
    /// A normal-priority request without a deadline.
    pub fn new(name: impl Into<String>, config: MlrConfig) -> Self {
        Self {
            name: name.into(),
            config,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the completion deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    fn into_parts(self) -> (ReconJob, Option<Deadline>) {
        (
            ReconJob::new(self.name, self.config).with_priority(self.priority),
            self.deadline,
        )
    }
}

/// The deadline-aware serving front-end: request/response submission with
/// job cancellation over a [`Runtime`].
///
/// ```
/// use mlr_core::MlrConfig;
/// use mlr_runtime::{RuntimeConfig, ServeFront, ServeRequest};
///
/// let config = MlrConfig::quick(12, 8).with_iterations(2);
/// let front = ServeFront::new(RuntimeConfig {
///     workers: 1,
///     ..RuntimeConfig::matching(&config)
/// });
/// let report = front
///     .submit(ServeRequest::new("demo", config))
///     .expect("queue has room")
///     .wait_report()
///     .expect("job completes");
/// assert_eq!(report.loss.len(), 2);
/// let stats = front.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
pub struct ServeFront {
    runtime: Runtime,
}

impl ServeFront {
    /// Starts a front-end over a fresh runtime (and a fresh shared store).
    pub fn new(config: RuntimeConfig) -> Self {
        Self {
            runtime: Runtime::new(config),
        }
    }

    /// Starts a front-end over a runtime sharing an existing store.
    pub fn with_store(config: RuntimeConfig, store: Arc<ShardedMemoDb>) -> Self {
        Self {
            runtime: Runtime::with_store(config, store),
        }
    }

    /// Wraps an already-running runtime.
    pub fn over(runtime: Runtime) -> Self {
        Self { runtime }
    }

    /// The runtime underneath (store, governor, pressure, plain submits).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The runtime's telemetry recorder (disabled unless
    /// [`RuntimeConfig::telemetry`] was set).
    pub fn telemetry(&self) -> &mlr_telemetry::Telemetry {
        self.runtime.telemetry()
    }

    /// Non-blocking submission with admission control; the request's
    /// deadline (if any) starts counting now.
    pub fn submit(&self, request: ServeRequest) -> Result<JobHandle, AdmissionError> {
        let (job, deadline) = request.into_parts();
        self.runtime
            .admit(job, deadline.map(|d| d.starting_now()), false)
    }

    /// Blocking submission: applies backpressure to the producer until a
    /// queue slot frees up. Note that a deadline keeps counting while the
    /// producer is parked — a request that waited too long for admission
    /// can expire in the queue like any other.
    pub fn submit_blocking(&self, request: ServeRequest) -> Result<JobHandle, AdmissionError> {
        let (job, deadline) = request.into_parts();
        self.runtime
            .admit(job, deadline.map(|d| d.starting_now()), true)
    }

    /// Submission with bounded, deterministic retry: a *retryable* rejection
    /// ([`AdmissionError::QueueFull`] / [`AdmissionError::StorePressure`])
    /// is re-attempted up to `policy.max_attempts` times total, waiting
    /// `policy`'s seeded-jitter exponential backoff between attempts. A
    /// non-retryable rejection ([`AdmissionError::ShuttingDown`]) returns
    /// immediately, and the final attempt's error is returned verbatim when
    /// the budget runs out. Each re-attempt is counted in the telemetry's
    /// `retry_attempts`. The request's deadline (if any) starts counting at
    /// the attempt that is finally *admitted*, not at the first rejection —
    /// backoff never silently eats a job's deadline budget.
    pub fn submit_with_retry(
        &self,
        request: ServeRequest,
        policy: &RetryPolicy,
    ) -> Result<JobHandle, AdmissionError> {
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match self.submit(request.clone()) {
                Ok(handle) => return Ok(handle),
                Err(e) if e.is_retryable() && attempt < attempts => {
                    self.telemetry().count(CounterId::RetryAttempts, 1);
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// A snapshot of the runtime statistics (including deadline slack
    /// percentiles and cancelled/expired counts).
    pub fn stats(&self) -> RuntimeStats {
        self.runtime.stats()
    }

    /// Enters drain mode: rejects new requests, keeps serving admitted ones.
    pub fn close(&self) {
        self.runtime.close();
    }

    /// Drains admitted jobs, stops the workers, returns final statistics.
    pub fn shutdown(self) -> RuntimeStats {
        self.runtime.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_budget_roundtrip() {
        let d = Deadline::within_seconds(1.5);
        assert_eq!(d.budget(), Duration::from_millis(1500));
        // Negative budgets clamp to an immediately-due deadline.
        assert_eq!(Deadline::within_seconds(-3.0).budget(), Duration::ZERO);
        let at = d.starting_now();
        assert!(at > Instant::now());
    }

    #[test]
    fn retry_bounds_attempts_and_counts_them() {
        use mlr_memo::{CapacityBudget, EvictionPolicyKind};
        // A one-entry budget saturates the store after the first job, and
        // pressure never drains on its own — a deterministic, race-free
        // retryable rejection for every later attempt.
        let config = MlrConfig::quick(12, 8)
            .with_iterations(4)
            .with_memo_budget(CapacityBudget::entries(1), EvictionPolicyKind::Fifo);
        let front = ServeFront::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            admission_max_pressure: Some(0.5),
            telemetry: true,
            ..RuntimeConfig::matching(&config)
        });
        let fill = front
            .submit(ServeRequest::new("fill", config))
            .expect("empty queue admits");
        assert!(fill.wait().is_completed());
        let policy = RetryPolicy::new(3)
            .with_seed(9)
            .with_tick(Duration::from_micros(50));
        match front.submit_with_retry(ServeRequest::new("turned-away", config), &policy) {
            Err(AdmissionError::StorePressure { pressure, limit }) => assert!(pressure > limit),
            Err(e) => panic!("expected StorePressure after retries, got {e}"),
            Ok(_) => panic!("expected StorePressure after retries, got admission"),
        }
        // 3 attempts total = 2 re-attempts counted.
        let snap = front.telemetry().snapshot().expect("telemetry enabled");
        assert_eq!(snap.metrics.counter(CounterId::RetryAttempts), 2);
        let _ = front.shutdown();
    }

    #[test]
    fn non_retryable_rejections_return_without_retrying() {
        let config = MlrConfig::quick(12, 8).with_iterations(2);
        let front = ServeFront::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            telemetry: true,
            ..RuntimeConfig::matching(&config)
        });
        front.close();
        let policy = RetryPolicy::new(8).with_tick(Duration::from_micros(50));
        match front.submit_with_retry(ServeRequest::new("late", config), &policy) {
            Err(AdmissionError::ShuttingDown) => {}
            Err(e) => panic!("expected immediate ShuttingDown, got {e}"),
            Ok(_) => panic!("expected immediate ShuttingDown, got admission"),
        }
        let snap = front.telemetry().snapshot().expect("telemetry enabled");
        assert_eq!(
            snap.metrics.counter(CounterId::RetryAttempts),
            0,
            "a non-retryable rejection must never be re-attempted"
        );
        let _ = front.shutdown();
    }

    #[test]
    fn request_builder_carries_everything() {
        let req = ServeRequest::new("preview", MlrConfig::quick(12, 8))
            .with_priority(Priority::Interactive)
            .with_deadline(Deadline::within(Duration::from_secs(30)));
        assert_eq!(req.name, "preview");
        assert_eq!(req.priority, Priority::Interactive);
        let (job, deadline) = req.into_parts();
        assert_eq!(job.priority, Priority::Interactive);
        assert_eq!(deadline.unwrap().budget(), Duration::from_secs(30));
    }
}
