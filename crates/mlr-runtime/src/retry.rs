//! Deterministic retry with seeded-jitter exponential backoff.
//!
//! The serving front-end rejects submissions when the queue is full or the
//! shared store is under capacity pressure. Both conditions are *transient*
//! — a worker pops an entry, an eviction relieves the store — so the right
//! client response is a bounded retry with backoff. [`RetryPolicy`] encodes
//! that response deterministically: the backoff sequence is a pure function
//! of `(seed, attempt)` expressed in logical ticks, so two clients
//! configured with the same policy produce the same schedule and a replayed
//! run retries at the same points. Only the *sleep* that realises a tick is
//! wall time; every decision is tick-arithmetic.
//!
//! Which rejections are retryable is the error's own call:
//! [`AdmissionError::is_retryable`] (queue-full and store-pressure yes,
//! shutdown no), and for terminal job statuses
//! [`JobStatus::is_retryable`](crate::JobStatus::is_retryable) (only the
//! casualty of a worker death — never a cancelled, expired or
//! deterministically-panicking job).

use crate::queue::AdmissionError;
use std::time::Duration;

impl AdmissionError {
    /// Whether the same submission could plausibly be admitted later.
    /// Queue-full and store-pressure rejections are transient (workers
    /// drain the queue, eviction relieves the store); a shutting-down
    /// runtime never admits again.
    pub fn is_retryable(&self) -> bool {
        match self {
            AdmissionError::QueueFull { .. } | AdmissionError::StorePressure { .. } => true,
            AdmissionError::ShuttingDown => false,
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer-style mixer — a bijective
/// avalanche function, so distinct `(seed, attempt)` pairs give
/// well-scattered jitter without any RNG state to carry between attempts.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A bounded, deterministic retry schedule: exponential backoff in logical
/// ticks with seeded jitter.
///
/// Attempt `k` (1-based) failing retryably is followed by a wait of
/// `backoff_ticks(k)` ticks, where the base doubles each attempt
/// (`base_ticks << (k-1)`), the jitter drawn from `splitmix64(seed ^ k)`
/// keeps the wait in `[base/2, base]` (decorrelating clients that share a
/// policy but not a seed), and the whole thing is capped at
/// `max_backoff_ticks`. No attempt counter survives outside the call — the
/// schedule is a pure function, which is what the determinism tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (the first try included). `1` disables
    /// retrying entirely; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Backoff base after the first failed attempt, in logical ticks.
    pub base_ticks: u64,
    /// Ceiling on any single wait, in ticks (the exponential stops growing
    /// here).
    pub max_backoff_ticks: u64,
    /// Jitter seed: two policies differing only in seed produce different
    /// (but individually deterministic) schedules.
    pub seed: u64,
    /// Wall duration of one logical tick — only used when a wait is
    /// *realised* by [`RetryPolicy::backoff`]; every decision stays in
    /// ticks.
    pub tick: Duration,
}

impl RetryPolicy {
    /// A policy with `max_attempts` tries, 4-tick base, 256-tick cap,
    /// seed 0 and millisecond ticks.
    pub fn new(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base_ticks: 4,
            max_backoff_ticks: 256,
            seed: 0,
            tick: Duration::from_millis(1),
        }
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the wall duration of one tick.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// The wait after failed attempt `attempt` (1-based), in ticks: jittered
    /// exponential, capped, pure in `(self, attempt)`. Attempt 0 (nothing
    /// failed yet) waits nothing.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_ticks == 0 {
            return 0;
        }
        let base = self
            .base_ticks
            .saturating_shl((attempt - 1).min(63))
            .min(self.max_backoff_ticks)
            .max(1);
        // Jitter into [base/2, base]: never collapses to zero wait, never
        // exceeds the capped base.
        let span = base / 2;
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(attempt)) % (span + 1)
        };
        base - jitter
    }

    /// The wall wait realising [`RetryPolicy::backoff_ticks`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.tick
            .saturating_mul(u32::try_from(self.backoff_ticks(attempt)).unwrap_or(u32::MAX))
    }

    /// The full wait schedule in ticks — one entry per failed attempt that
    /// still has a retry behind it (`max_attempts - 1` entries).
    pub fn schedule(&self) -> Vec<u64> {
        (1..self.max_attempts.max(1))
            .map(|k| self.backoff_ticks(k))
            .collect()
    }
}

/// `u64::checked_shl` that saturates instead of wrapping — `base << k`
/// overflow must cap at the ceiling, not restart the exponential.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_errors_classify_retryability() {
        assert!(AdmissionError::QueueFull { capacity: 4 }.is_retryable());
        assert!(AdmissionError::StorePressure {
            pressure: 0.9,
            limit: 0.8
        }
        .is_retryable());
        assert!(!AdmissionError::ShuttingDown.is_retryable());
    }

    #[test]
    fn backoff_sequence_is_deterministic_for_a_fixed_seed() {
        let policy = RetryPolicy::new(6).with_seed(0xFA11);
        let again = RetryPolicy::new(6).with_seed(0xFA11);
        assert_eq!(policy.schedule(), again.schedule());
        assert_eq!(policy.schedule().len(), 5);
        // A different seed decorrelates the schedule (same bounds, different
        // jitter draws).
        let other = RetryPolicy::new(6).with_seed(0xBEEF);
        assert_ne!(policy.schedule(), other.schedule());
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 12,
            base_ticks: 4,
            max_backoff_ticks: 64,
            seed: 7,
            tick: Duration::from_millis(1),
        };
        assert_eq!(policy.backoff_ticks(0), 0);
        for k in 1..12 {
            let uncapped = 4u64.saturating_shl((k - 1).min(63)).min(64);
            let wait = policy.backoff_ticks(k);
            assert!(
                wait >= uncapped - uncapped / 2 && wait <= uncapped,
                "attempt {k}: wait {wait} outside [base/2, base] of {uncapped}"
            );
        }
        // Far past the cap the wait stays pinned within the cap's jitter
        // band — no overflow wraparound restarting the exponential.
        assert!(policy.backoff_ticks(60) >= 32);
        assert!(policy.backoff_ticks(60) <= 64);
    }

    #[test]
    fn backoff_realises_ticks_as_wall_duration() {
        let policy = RetryPolicy::new(3)
            .with_seed(1)
            .with_tick(Duration::from_micros(10));
        let ticks = policy.backoff_ticks(1);
        assert_eq!(policy.backoff(1), Duration::from_micros(10) * ticks as u32);
    }

    #[test]
    fn degenerate_policies_stay_sane() {
        // max_attempts 0/1: nothing to wait for.
        assert!(RetryPolicy::new(0).schedule().is_empty());
        assert!(RetryPolicy::new(1).schedule().is_empty());
        // Zero base: waits are zero but attempts still bound.
        let zero = RetryPolicy {
            base_ticks: 0,
            ..RetryPolicy::new(4)
        };
        assert_eq!(zero.schedule(), vec![0, 0, 0]);
    }
}
