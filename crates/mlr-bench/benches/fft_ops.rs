//! Criterion micro-benchmarks for the FFT substrate: uniform 1-D/2-D FFTs and
//! the unequally-spaced transforms behind `F_u1D`/`F_u2D`.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlr_fft::fft::{Direction, FftPlan};
use mlr_fft::fft2d::Fft2Batch;
use mlr_fft::usfft::Usfft1d;
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use rand::Rng;

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = seeded(seed);
    (0..n).map(|_| Complex64::new(rng.gen(), rng.gen())).collect()
}

fn bench_fft1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft1d");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let signal = random_signal(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = signal.clone();
                plan.process(&mut buf, Direction::Forward);
                buf
            })
        });
    }
    group.finish();
}

fn bench_fft2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d_plane");
    for &n in &[64usize, 128] {
        let batch = Fft2Batch::new(n, n);
        let plane = random_signal(n * n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = plane.clone();
                batch.process_plane(&mut buf, Direction::Forward);
                buf
            })
        });
    }
    group.finish();
}

fn bench_usfft1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("usfft1d_forward");
    for &n in &[64usize, 256] {
        let freqs: Vec<f64> = (0..n).map(|i| (i as f64 - (n / 2) as f64) / n as f64 * 0.57).collect();
        let transform = Usfft1d::new(n, freqs);
        let signal = random_signal(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| transform.forward(&signal))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft1d, bench_fft2d, bench_usfft1d);
criterion_main!(benches);
