//! Criterion micro-benchmarks for the memoization substrate: key encoding,
//! ANN search and cache lookups.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlr_lamino::FftOpKind;
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use mlr_memo::ann::{IvfConfig, IvfIndex};
use mlr_memo::cache::{CacheKind, MemoCache};
use mlr_memo::encoder::{CnnEncoder, EncoderConfig};
use rand::Rng;
use std::sync::Arc;

fn random_chunk(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = seeded(seed);
    (0..n).map(|_| Complex64::new(rng.gen(), rng.gen())).collect()
}

fn bench_encoder(c: &mut Criterion) {
    let encoder = CnnEncoder::new(EncoderConfig::default(), 1);
    let mut group = c.benchmark_group("cnn_encode");
    for &n in &[1024usize, 8192] {
        let chunk = random_chunk(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| encoder.encode(&chunk))
        });
    }
    group.finish();
}

fn bench_ann_search(c: &mut Criterion) {
    let mut rng = seeded(2);
    let dim = 60;
    let mut index = IvfIndex::new(dim, IvfConfig::default(), 3);
    for i in 0..5000u64 {
        index.add(i, (0..dim).map(|_| rng.gen::<f64>()).collect());
    }
    let query: Vec<f64> = (0..dim).map(|_| rng.gen()).collect();
    c.bench_function("ivf_search_5k", |b| b.iter(|| index.search(&query)));
}

fn bench_cache_lookup(c: &mut Criterion) {
    let mut private = MemoCache::new(CacheKind::Private, 64);
    let mut global = MemoCache::new(CacheKind::Global, 64);
    let key: Vec<f64> = (0..60).map(|i| i as f64).collect();
    let value = Arc::new(vec![Complex64::ONE; 1024]);
    for loc in 0..64 {
        private.insert(FftOpKind::Fu2D, loc, key.clone(), value.clone(), 0);
        global.insert(FftOpKind::Fu2D, loc, key.clone(), value.clone(), 0);
    }
    c.bench_function("cache_lookup_private", |b| {
        b.iter(|| private.lookup(FftOpKind::Fu2D, 17, &key, 0.9, 1))
    });
    c.bench_function("cache_lookup_global", |b| {
        b.iter(|| global.lookup(FftOpKind::Fu2D, 17, &key, 0.9, 1))
    });
}

criterion_group!(benches, bench_encoder, bench_ann_search, bench_cache_lookup);
criterion_main!(benches);
