//! Region-level allocation-budget tests for `no_alloc_region!`.
//!
//! This harness installs the counting global allocator, so the guard is
//! armed: the steady-state cache-hit window of the memoized executor must
//! stay inside the fig22 envelope (≤ 4 allocations per chunk), and an
//! over-budget region must panic. Under the `lockcheck` sanitizer the guard
//! disarms itself (backtrace capture allocates), which
//! `enforcement_matches_lockcheck_mode` pins down.

use mlr_bench::alloc::{counting_allocator_installed, AllocRegion, CountingAllocator};
use mlr_bench::no_alloc_region;
use mlr_fft::fft::{Direction, FftPlan};
use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use mlr_memo::{EncoderConfig, MemoConfig, MemoizedExecutor};
use mlr_telemetry::Telemetry;
use rand::Rng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The fig22 allocation envelope: encoded key plus amortised batch plumbing.
const MAX_HIT_ALLOCS_PER_CHUNK: u64 = 4;

fn chunk(loc: usize, n: usize) -> Vec<Complex64> {
    let mut rng = seeded(0xA110C ^ loc as u64);
    (0..n)
        .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect()
}

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 16,
        learning_rate: 1e-3,
    }
}

/// One whole-grid batch dispatch per iteration through the zero-copy seam.
fn drive(
    exec: &MemoizedExecutor,
    inputs: &[Vec<Complex64>],
    outputs: &mut [Vec<Complex64>],
    compute: &(dyn Fn(&[Complex64]) -> Vec<Complex64> + Sync),
    first_iteration: usize,
    iterations: usize,
) {
    for it in first_iteration..first_iteration + iterations {
        exec.begin_iteration(it);
        let batch: Vec<ChunkRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(loc, input)| ChunkRequest {
                loc,
                input,
                compute,
            })
            .collect();
        let mut slots: Vec<&mut [Complex64]> =
            outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        exec.execute_batch_into(FftOpKind::Fu2D, &batch, &mut slots);
    }
}

#[test]
fn probe_detects_installed_counting_allocator() {
    assert!(
        counting_allocator_installed(),
        "this harness registers CountingAllocator via #[global_allocator]"
    );
}

#[test]
fn steady_hit_window_stays_inside_the_region_budget() {
    // One deterministic code path: the region must count chunk work, not
    // scheduling noise.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let n = 512;
    let locations = 8;
    let steady = 4;
    let plan = FftPlan::new(n);
    let compute = move |x: &[Complex64]| {
        let mut v = x.to_vec();
        plan.process(&mut v, Direction::Forward);
        v
    };
    let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, n)).collect();
    let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; locations];
    let memo = MemoConfig {
        warmup_iterations: 0,
        ..Default::default()
    };
    let exec = MemoizedExecutor::new(memo, encoder(), 22).with_telemetry(Telemetry::enabled());

    // Warm-up rounds: prefilter note, populate, promote, pool warming.
    drive(&exec, &inputs, &mut outputs, &compute, 0, 4);

    let chunks = (locations * steady) as u64;
    no_alloc_region!(
        "fig22 steady cache-hit window",
        MAX_HIT_ALLOCS_PER_CHUNK * chunks,
        drive(&exec, &inputs, &mut outputs, &compute, 4, steady)
    );
}

#[test]
fn over_budget_region_panics() {
    let region = AllocRegion::enter("enforcement probe", u64::MAX);
    if !region.enforced() {
        // Lockcheck build: backtrace capture allocates, the guard disarms.
        let _ = region.finish();
        return;
    }
    let caught = std::panic::catch_unwind(|| {
        no_alloc_region!("negative", 2, {
            for i in 0..8u64 {
                std::hint::black_box(vec![i; 16]);
            }
        })
    });
    let _ = region.finish();
    let err = caught.expect_err("8 allocations against a budget of 2 must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("exceed the budget"),
        "panic should name the budget, got: {msg}"
    );
}

#[test]
fn enforcement_matches_lockcheck_mode() {
    let region = AllocRegion::enter("mode probe", u64::MAX);
    assert_eq!(region.enforced(), !parking_lot::lockcheck_enabled());
    let _ = region.finish();
}
