//! # mlr-bench
//!
//! Evaluation harness for the mLR reproduction. Every table and figure of the
//! paper's evaluation section has a corresponding binary in `src/bin/`:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig02_memory_breakdown` | Figure 2 — per-variable CPU memory and phase time of one ADMM iteration |
//! | `fig04_chunk_similarity` | Figure 4 — similar chunks across iterations at three locations |
//! | `fig08_overall` | Figure 8 — overall normalized time, mLR vs original, three dataset sizes |
//! | `fig09_cancellation_fusion` | Figure 9 — FFT/LSP time with and without cancellation + fusion |
//! | `fig10_memo_breakdown` | Figure 10 — per-operator memoization case breakdown (+ §6.4 case distribution) |
//! | `fig11_key_coalesce` | Figure 11 — communication/search time with and without key coalescing |
//! | `fig12_cache_hit_rate` | Figure 12 — private vs global cache hit rate over iterations |
//! | `fig13_offload` | Figure 13 — RSS over time for ADMM / greedy / ADMM-Offload (+ §5.1 LRU comparison) |
//! | `fig14_scalability` | Figure 14 — FFT-operation and overall time vs number of GPUs |
//! | `fig15_bandwidth` | Figure 15 — interconnect bandwidth utilisation vs number of GPUs |
//! | `fig16_latency_cdf` | Figure 16 — memoization-query latency CDF under contention |
//! | `fig17_convergence` | Figure 17 — convergence loss with and without memoization |
//! | `table1_accuracy` | Table 1 — reconstruction accuracy vs τ |
//! | `fig18_multi_job` | beyond the paper — multi-job runtime, shared vs isolated stores |
//! | `fig19_eviction` | beyond the paper — capacity budget vs cross-job hit rate per eviction policy |
//! | `fig20_intra_job` | beyond the paper — intra-job chunk parallelism: threads × chunk size, speedup + hit parity |
//! | `fig21_serving` | beyond the paper — deadline-aware serving: load × deadline tightness vs miss rate, cancellation guarantees |
//! | `fig22_hotpath` | beyond the paper — zero-copy memo hits: hit ns/chunk, miss FFT throughput, allocations/chunk (counting allocator), per-stage hit breakdown (prefilter/encode/peek/probe/quantize), prefilter skip lane; `--sweep` adds the 256..16 Ki-elem chunk-size sweep recording `break_even_chunk_elems` |
//! | `fig23_observability` | beyond the paper — telemetry overhead: disabled vs enabled hit ns/chunk, enabled-mode allocation envelope, export round-trip |
//! | `fig24_cluster` | beyond the paper — distributed memo tier: hit parity vs `ShardedMemoDb`, access-trace replay over simulated memory nodes (Figure 15/16 analogues) |
//! | `check_bench` | CI regression gate over the `BENCH_*.json` records (see `ci/bench_baseline.json`) |
//!
//! Run any of them with `cargo run --release -p mlr-bench --bin <name> [-- --scale tiny|small|paper]`.
//! `fig18_multi_job`, `fig19_eviction`, `fig20_intra_job`, `fig21_serving`,
//! `fig22_hotpath`, `fig23_observability` and `fig24_cluster` additionally accept `--smoke`, the
//! reduced-size mode CI's bench-smoke job runs; `fig22_hotpath` also accepts
//! `--sweep` (CI passes it) to embed the chunk-size break-even sweep in
//! `BENCH_hotpath.json`. Each prints a human-readable
//! table with the paper's reported values next to the reproduced ones and
//! writes a JSON record under `target/experiments/`.

use mlr_core::Scale;
use serde::Serialize;
use std::path::PathBuf;

pub mod alloc;
pub mod json;

/// Parses the `--scale` argument from the process command line.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" && i + 1 < args.len() {
            return Scale::parse(&args[i + 1]);
        }
    }
    Scale::Small
}

/// Whether `--smoke` was passed: the reduced-size mode CI's bench-smoke job
/// runs, small enough for a pull-request gate but still producing the same
/// `BENCH_*.json` records the full runs do.
pub fn smoke_from_args() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// The value of `--arg <value>` from the process command line, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name && i + 1 < args.len() {
            return Some(args[i + 1].clone());
        }
    }
    None
}

/// Prints a section header for a harness.
pub fn header(experiment: &str, description: &str) {
    println!("================================================================");
    println!("{experiment}: {description}");
    println!("================================================================");
}

/// Prints one row of a two-column comparison (paper vs reproduced).
pub fn compare_row(label: &str, paper: &str, measured: &str) {
    println!("{label:<44} paper: {paper:<16} reproduced: {measured}");
}

/// Writes the machine-readable record of an experiment to
/// `target/experiments/<name>.json`.
pub fn write_record<T: Serialize>(name: &str, record: &T) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(record) {
        let _ = std::fs::write(&path, json);
        println!("\n[record written to {}]", path.display());
    }
}

/// Spins (yielding) until `done` returns true, panicking with `what` after
/// `timeout` — the wait primitive the serving harness and tests use to
/// observe another thread reaching a phase (job started running, first
/// iteration in flight) without sleeping past it.
pub fn spin_until(what: &str, timeout: std::time::Duration, mut done: impl FnMut() -> bool) {
    let giving_up = std::time::Instant::now() + timeout;
    while !done() {
        assert!(
            std::time::Instant::now() < giving_up,
            "timed out waiting for: {what}"
        );
        std::thread::yield_now();
    }
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a fraction as a percentage.
pub fn pct(f: f64) -> String {
    format!("{:.1} %", 100.0 * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 µs");
        assert_eq!(pct(0.528), "52.8 %");
    }

    #[test]
    fn default_scale_is_small() {
        assert_eq!(scale_from_args(), Scale::Small);
    }

    #[test]
    fn smoke_defaults_off() {
        assert!(!smoke_from_args());
        assert_eq!(arg_value("--no-such-arg"), None);
    }
}
