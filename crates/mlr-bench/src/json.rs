//! A minimal JSON reader for the bench-regression gate.
//!
//! The vendored `serde_json` shim only *serialises* (that is all the
//! harnesses need to produce their `BENCH_*.json` records); the CI gate in
//! `check_bench` must also read those records and the committed baseline
//! back. This module is a small recursive-descent parser over the JSON the
//! workspace itself emits — objects, arrays, strings (with the standard
//! escapes), numbers, booleans and `null` — plus dotted-path lookup.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the records we emit).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved (lookup is linear).
    Object(Vec<(String, JsonValue)>),
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after document", pos));
        }
        Ok(value)
    }

    /// Looks up a dot-separated path (`"shared.cross_job_hit_rate"`,
    /// `"cells.0.hit_rate"` — numeric segments index arrays).
    pub fn get(&self, path: &str) -> Option<&JsonValue> {
        let mut current = self;
        for segment in path.split('.') {
            current = match current {
                JsonValue::Object(fields) => {
                    fields.iter().find(|(k, _)| k == segment).map(|(_, v)| v)?
                }
                JsonValue::Array(items) => items.get(segment.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(current)
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf8", start))?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| err("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err("bad utf8", *pos))?,
                            16,
                        )
                        .map_err(|_| err("invalid \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole character.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("bad utf8", *pos))?;
                let ch = s.chars().next().ok_or_else(|| err("bad utf8", *pos))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected object key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_records_the_workspace_emits() {
        let doc = r#"{
            "jobs": 4,
            "shared": { "hit_rate": 0.625, "cross_job_hit_rate": 0.5 },
            "cells": [ { "policy": "lru", "bounded": true },
                       { "policy": "cost-aware", "bounded": true } ],
            "note": "x A\n",
            "none": null,
            "neg": -1.5e-3
        }"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("jobs").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(
            v.get("shared.cross_job_hit_rate")
                .and_then(JsonValue::as_f64),
            Some(0.5)
        );
        assert_eq!(
            v.get("cells.1.policy").and_then(JsonValue::as_str),
            Some("cost-aware")
        );
        assert_eq!(
            v.get("cells.0.bounded").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(v.get("note").and_then(JsonValue::as_str), Some("x A\n"));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        assert_eq!(v.get("neg").and_then(JsonValue::as_f64), Some(-1.5e-3));
        assert_eq!(
            v.get("cells")
                .and_then(JsonValue::as_array)
                .map(|a| a.len()),
            Some(2)
        );
        assert!(v.get("missing").is_none());
        assert!(v.get("cells.7").is_none());
    }

    #[test]
    fn roundtrips_with_the_serde_shim() {
        // Whatever the serialisation shim emits, this parser must read.
        #[derive(serde::Serialize)]
        struct Rec {
            name: String,
            rate: f64,
            ok: bool,
            items: Vec<u64>,
        }
        let text = serde_json::to_string_pretty(&Rec {
            name: "fig19".into(),
            rate: 0.512,
            ok: true,
            items: vec![1, 2, 3],
        })
        .unwrap();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("fig19"));
        assert_eq!(v.get("rate").and_then(JsonValue::as_f64), Some(0.512));
        assert_eq!(v.get("items.2").and_then(JsonValue::as_f64), Some(3.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("{}extra").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }
}
