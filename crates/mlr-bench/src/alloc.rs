//! A counting global allocator for the allocation gates.
//!
//! The zero-copy hot-path contract (`fig22_hotpath`) is not "the hit path is
//! fast on this machine" — that would be noise-gated — but "the hit path
//! performs (approximately) **no allocator traffic**", which is a
//! deterministic property of the code path and therefore CI-gateable. A
//! harness opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mlr_bench::alloc::CountingAllocator = CountingAllocator;
//! ```
//!
//! and brackets its measured region with [`snapshot`]: the delta of
//! `(allocations, bytes)` divided by the chunks processed is the
//! allocations-per-chunk figure the gate asserts on. Counting is two relaxed
//! atomic increments per `alloc`/`realloc` — cheap enough to leave on for
//! the timing columns too (it perturbs hit and miss paths equally).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting every allocation and its size.
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`; only counters are added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is fresh allocator traffic for the grown span; counting the
        // full new size keeps the gate conservative.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Current `(allocations, bytes)` totals since process start.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

/// Delta between two [`snapshot`]s as `(allocations, bytes)`.
pub fn delta(before: (u64, u64), after: (u64, u64)) -> (u64, u64) {
    (after.0 - before.0, after.1 - before.1)
}
