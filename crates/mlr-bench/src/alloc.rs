//! A counting global allocator for the allocation gates.
//!
//! The zero-copy hot-path contract (`fig22_hotpath`) is not "the hit path is
//! fast on this machine" — that would be noise-gated — but "the hit path
//! performs (approximately) **no allocator traffic**", which is a
//! deterministic property of the code path and therefore CI-gateable. A
//! harness opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mlr_bench::alloc::CountingAllocator = CountingAllocator;
//! ```
//!
//! and brackets its measured region with [`snapshot`]: the delta of
//! `(allocations, bytes)` divided by the chunks processed is the
//! allocations-per-chunk figure the gate asserts on. Counting is two relaxed
//! atomic increments per `alloc`/`realloc` — cheap enough to leave on for
//! the timing columns too (it perturbs hit and miss paths equally).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting every allocation and its size.
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`; only counters are added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is fresh allocator traffic for the grown span; counting the
        // full new size keeps the gate conservative.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Current `(allocations, bytes)` totals since process start.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

/// Delta between two [`snapshot`]s as `(allocations, bytes)`.
pub fn delta(before: (u64, u64), after: (u64, u64)) -> (u64, u64) {
    (after.0 - before.0, after.1 - before.1)
}

/// Whether [`CountingAllocator`] is actually installed as the global
/// allocator of this process, detected once with a probe allocation.
///
/// The counters only move when a harness has opted in with
/// `#[global_allocator]`; a library unit test running under the plain
/// system allocator sees a flat counter and must not assert on it.
pub fn counting_allocator_installed() -> bool {
    static INSTALLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *INSTALLED.get_or_init(|| {
        let before = snapshot();
        std::hint::black_box(vec![0u8; 64]);
        delta(before, snapshot()).0 > 0
    })
}

/// RAII bracket asserting an allocation budget over a region of code.
///
/// Created by [`enter`](AllocRegion::enter) (or the [`no_alloc_region!`](crate::no_alloc_region)
/// macro), closed by [`finish`](AllocRegion::finish) which returns the
/// region's `(allocations, bytes)` delta and panics when the allocation
/// count exceeds the budget. Dropping the guard without calling `finish`
/// still enforces the budget (unless the thread is already panicking).
///
/// Enforcement is automatically disarmed when
///
/// * the counting allocator is not installed (see
///   [`counting_allocator_installed`]) — the counters would read zero and
///   vacuously pass, so the guard reports but never asserts; or
/// * the `lockcheck` lock-order sanitizer is compiled in
///   (`parking_lot::lockcheck_enabled()`): lockcheck captures an
///   acquisition backtrace on every lock, which allocates freely and would
///   fail any honest budget.
#[must_use = "the budget is checked when the region is finished or dropped"]
pub struct AllocRegion {
    label: &'static str,
    max_allocs: u64,
    before: (u64, u64),
    enforced: bool,
    finished: bool,
}

impl AllocRegion {
    /// Opens a region allowing at most `max_allocs` allocations.
    pub fn enter(label: &'static str, max_allocs: u64) -> Self {
        let enforced = counting_allocator_installed() && !parking_lot::lockcheck_enabled();
        Self {
            label,
            max_allocs,
            before: snapshot(),
            enforced,
            finished: false,
        }
    }

    /// Whether this region will actually assert its budget.
    pub fn enforced(&self) -> bool {
        self.enforced
    }

    fn check(&self) -> (u64, u64) {
        let d = delta(self.before, snapshot());
        if self.enforced {
            assert!(
                d.0 <= self.max_allocs,
                "no_alloc_region '{}': {} allocations ({} bytes) exceed the budget of {}",
                self.label,
                d.0,
                d.1,
                self.max_allocs
            );
        }
        d
    }

    /// Closes the region, asserting the budget and returning the
    /// `(allocations, bytes)` delta.
    pub fn finish(mut self) -> (u64, u64) {
        self.finished = true;
        self.check()
    }
}

impl Drop for AllocRegion {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            self.check();
        }
    }
}

/// Runs a block under an [`AllocRegion`] allocation budget.
///
/// ```ignore
/// let out = no_alloc_region!("steady hit window", 4 * chunks, {
///     drive(&exec, &inputs, &mut outputs, &compute, 4, steady)
/// });
/// ```
///
/// Evaluates to the block's value; panics if the block performs more than
/// the budgeted number of allocations (see [`AllocRegion`] for when
/// enforcement is disarmed).
#[macro_export]
macro_rules! no_alloc_region {
    ($label:expr, $max_allocs:expr, $body:expr) => {{
        let __region = $crate::alloc::AllocRegion::enter($label, $max_allocs);
        let __out = $body;
        __region.finish();
        __out
    }};
}
