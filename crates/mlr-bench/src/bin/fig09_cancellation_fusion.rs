//! Figure 9: FFT (one forward + one adjoint pass) and LSP time under the
//! three strategies: no cancellation/fusion, cancellation only, both.
use mlr_bench::{compare_row, fmt_secs, header, scale_from_args, write_record};
use mlr_core::Scale;
use mlr_sim::workload::{AdmmWorkload, ProblemSize};
use mlr_sim::CostModel;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    lsp_original: f64,
    lsp_cancelled_only: f64,
    lsp_cancelled_fused: f64,
}

fn main() {
    header(
        "Figure 9",
        "operation cancellation and fusion (LSP with N_inner = 4)",
    );
    let _ = scale_from_args() == Scale::Paper; // the figure is a cost-model projection at paper sizes
    let cost = CostModel::polaris(1);
    let mut rows = Vec::new();
    for (label, size, paper_gain_fft) in [
        ("1K^3", ProblemSize::paper_1k(), "9.4 % / 7.1 %"),
        ("1.5K^3", ProblemSize::paper_1_5k(), "75.3 % / 60.1 %"),
    ] {
        let w = AdmmWorkload::new(size);
        let original = w.lsp_time(&cost, false);
        let fused = w.lsp_time(&cost, true);
        // Cancellation without fusion: the frequency-domain subtraction runs
        // on the CPU over COMPLEX64 data instead of being fused on the GPU.
        let cpu_subtraction = cost.cpu_elementwise_time(size.data_elems() as usize, 2.0, 32.0)
            - cost.gpu_elementwise_time(size.data_elems() as usize);
        let cancelled_only = fused + cpu_subtraction.max(0.0) * w.n_inner as f64;
        println!("dataset {label}:");
        println!("  LSP w/o cancellation w/o fusion : {}", fmt_secs(original));
        println!(
            "  LSP w/ cancellation  w/o fusion : {}",
            fmt_secs(cancelled_only)
        );
        println!("  LSP w/ cancellation  w/ fusion  : {}", fmt_secs(fused));
        compare_row(
            &format!("  improvement from both ({label})"),
            paper_gain_fft,
            &mlr_bench::pct(1.0 - fused / original),
        );
        rows.push(Row {
            dataset: label.to_string(),
            lsp_original: original,
            lsp_cancelled_only: cancelled_only,
            lsp_cancelled_fused: fused,
        });
    }
    println!("\n(the larger dataset benefits more, as in the paper; cancellation without fusion");
    println!(
        " can lose time on the smaller dataset because the COMPLEX64 subtraction lands on the CPU)"
    );
    write_record("fig09_cancellation_fusion", &rows);
}
