//! Figure 22 (beyond the paper): the zero-copy, allocation-free chunk hot
//! path.
//!
//! mLR's premise is that a memo hit must be far cheaper than the FFT it
//! replaces. This harness measures the *constant factors* of that claim on
//! the real executor seam (`FftExecutor::execute_batch_into`):
//!
//! * **hit path** — steady-state cache-hit and db-hit cost per chunk
//!   (ns/chunk), with every payload handed out as a shared `Arc<[Complex64]>`
//!   and copied exactly once, straight into the caller's output slice;
//! * **miss path** — exact-FFT throughput through the same seam (the work a
//!   hit avoids);
//! * **prefilter path** — a drifting-amplitude trace in which every chunk's
//!   norm fingerprint falls outside the τ-band of its scope's history, so
//!   the doorkeeper routes every chunk straight to the exact FFT without
//!   touching the encoder or the index. The skip rate and the ns/chunk
//!   saved versus the full encode→probe→miss path are both recorded;
//! * **allocator traffic** — allocations and bytes per steady-state hit
//!   chunk, measured by the counting global allocator. This is the
//!   deterministic CI gate: a reintroduced payload deep-clone (the pre-PR-5
//!   behaviour cloned every hit out of the store) immediately shows up as
//!   payload-sized allocations per chunk. The hit-path executors run with
//!   telemetry *enabled*, so the gate also certifies that the instrumented
//!   path stays allocation-free;
//! * **stage breakdown** — where the hit ns/chunk goes: prefilter, encode,
//!   cache peek, IVF probe (exact rescore), key quantisation, payload copy
//!   and miss-FFT nanoseconds per chunk from the telemetry stage
//!   histograms, answering how the measured hit cost splits. With the
//!   prefilter and quantize sub-stages timed, the stage sum is held to
//!   within 5 % of the measured wall clock (was 10 % before those stages
//!   existed).
//!
//! `--sweep` additionally runs a chunk-size sweep (256 .. 16 Ki complex
//! elems) of steady cache-hit cost versus exact-FFT cost through the same
//! seam and records `break_even_chunk_elems` — the smallest chunk size at
//! which a memo hit beats the FFT it replaces. CI runs
//! `fig22_hotpath --smoke --sweep` so `BENCH_hotpath.json` always carries
//! the sweep; without `--sweep` the sweep fields are zeroed.
//!
//! Gated in CI (`ci/bench_baseline.json`): `hit_path_allocation_free` and
//! `zero_payload_clone` must hold exactly; the machine-independent
//! `modeled_hit_speedup` — the analytic recompute cost `w·n·log2 n` over a
//! `2n` element-touch model of the hit memcpy — must stay ≥ 2×; the
//! *measured* `measured_hit_speedup` must stay above 1.0 (the
//! `measured_hit_beats_fft` boolean), the sweep break-even must land at or
//! below the smoke chunk size, and the drifting trace's
//! `prefilter.skip_rate` must stay positive. Remaining wall-clock columns
//! are informational.
//!
//! The machine-readable record lands in `BENCH_hotpath.json` (and under
//! `target/experiments/`).

use mlr_bench::alloc::{delta, snapshot, CountingAllocator};
use mlr_bench::{compare_row, fmt_secs, header, smoke_from_args, write_record};
use mlr_fft::fft::{Direction, FftPlan};
use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use mlr_memo::{EncoderConfig, MemoConfig, MemoizedExecutor};
use mlr_telemetry::{MetricsSnapshot, StageId, Telemetry, STAGE_NAMES};
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct PathStats {
    ns_per_chunk: f64,
    allocs_per_chunk: f64,
    alloc_bytes_per_chunk: f64,
    db_hits: u64,
    cache_hits: u64,
    failed_memo: u64,
    computed: u64,
}

/// Per-stage split of a steady-state hit chunk, from the telemetry stage
/// histograms recorded by the executor itself (prefilter → encode → cache
/// peek → IVF probe + quantize → payload copy, plus the miss-FFT stage on
/// recompute paths). This answers the question the aggregate ns/chunk
/// column cannot: *where* the hit-path time goes.
#[derive(Serialize)]
struct StageBreakdown {
    encode_ns_per_chunk: f64,
    cache_peek_ns_per_chunk: f64,
    ivf_probe_ns_per_chunk: f64,
    payload_copy_ns_per_chunk: f64,
    miss_fft_ns_per_chunk: f64,
    /// Fingerprint compute + doorkeeper consult, charged on every chunk.
    prefilter_ns_per_chunk: f64,
    /// i8 key quantisation inside the probe (carved out of `ivf_probe`).
    quantize_ns_per_chunk: f64,
    /// Sum of the seven stage columns.
    stage_sum_ns_per_chunk: f64,
    /// The wall-clock ns/chunk measured over the same steady window.
    measured_ns_per_chunk: f64,
    /// stage_sum / measured: how much of the measured time the stage timers
    /// explain (the remainder is untimed commit bookkeeping).
    stage_sum_fraction: f64,
    /// Whether the stage sum lands within 5 % of the measured ns/chunk.
    /// Tightened from 10 % now that prefilter and quantize are timed;
    /// timing-noisy, so informational — not a CI gate.
    stage_sum_within_5pct: bool,
    /// The most expensive stage of this path.
    top_stage: String,
}

/// Cost of the doorkeeper skip lane, measured over a drifting-amplitude
/// trace in which *every* chunk is provably outside the τ-band (successive
/// amplitudes differ by 3×, so the norm-ratio gate alone rejects): the
/// prefilter-on executor skips encode + probe on every chunk, the
/// prefilter-off twin pays the full encode → probe → miss path for the
/// identical trace.
#[derive(Serialize)]
struct PrefilterStats {
    /// Prefiltered chunks over total chunks on the drifting trace (1.0 by
    /// construction — the CI gate only demands it stays positive).
    skip_rate: f64,
    skipped_chunks: u64,
    /// ns/chunk with the prefilter on: fingerprint + exact FFT.
    skip_ns_per_chunk: f64,
    /// ns/chunk with the prefilter off: encode + probe + exact FFT.
    full_path_ns_per_chunk: f64,
    /// What the doorkeeper saves per never-going-to-hit chunk.
    saved_ns_per_chunk: f64,
}

/// One chunk size of the `--sweep` mode: steady cache-hit ns/chunk versus
/// exact-FFT ns/chunk through the same batch seam.
#[derive(Serialize)]
struct SweepPoint {
    chunk_elems: usize,
    cache_hit_ns_per_chunk: f64,
    miss_ns_per_chunk: f64,
    measured_hit_speedup: f64,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    chunk_elems: usize,
    payload_bytes: u64,
    locations: usize,
    steady_iterations: usize,
    cache_hit: PathStats,
    db_hit: PathStats,
    miss: PathStats,
    /// Stage split of the steady cache-hit window (telemetry enabled).
    cache_hit_stages: StageBreakdown,
    /// Stage split of the steady db-hit window (telemetry enabled).
    db_hit_stages: StageBreakdown,
    /// The doorkeeper skip lane measured on a drifting-amplitude trace.
    prefilter: PrefilterStats,
    miss_throughput_elems_per_sec: f64,
    /// Measured miss-ns / cache-hit-ns on this machine; gated in CI to
    /// stay above 1.0 — a memo hit must beat the FFT it replaces.
    measured_hit_speedup: f64,
    /// CI gate: `measured_hit_speedup > 1.0` at the smoke chunk size.
    measured_hit_beats_fft: bool,
    /// Machine-independent: analytic recompute cost over the 2n hit-copy
    /// model (the CI gate).
    modeled_hit_speedup: f64,
    /// Steady-state cache-hit path stays within the allocation envelope
    /// (≤ MAX_HIT_ALLOCS allocations and ≤ MAX_HIT_ALLOC_BYTES per chunk).
    hit_path_allocation_free: bool,
    /// No hit chunk allocated anything payload-sized: the stored value is
    /// shared, never deep-cloned.
    zero_payload_clone: bool,
    /// Whether the `--sweep` chunk-size sweep ran (CI always passes it).
    sweep_run: bool,
    /// Per-chunk-size hit-vs-FFT points (empty without `--sweep`).
    sweep: Vec<SweepPoint>,
    /// Smallest swept chunk size whose measured hit speedup is ≥ 1.0
    /// (0 when the sweep did not run or never broke even).
    break_even_chunk_elems: usize,
    /// CI gate (with `--sweep`): the hit pays for itself at or below the
    /// default smoke chunk size of 1024 elems.
    break_even_at_or_below_smoke_chunk: bool,
}

/// Allocation envelope of one steady-state cache-hit chunk: the encoded key
/// (the one intended allocation) plus slack for amortised batch plumbing.
const MAX_HIT_ALLOCS: f64 = 4.0;
const MAX_HIT_ALLOC_BYTES: f64 = 1024.0;

/// The smoke-mode chunk size; the sweep gate demands break-even at or
/// below this.
const SMOKE_CHUNK_ELEMS: usize = 1024;

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 16,
        learning_rate: 1e-3,
    }
}

fn chunk(loc: usize, n: usize) -> Vec<Complex64> {
    let mut rng = seeded(0xF1622 ^ loc as u64);
    (0..n)
        .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect()
}

/// Drives `iterations` whole-grid batch dispatches (one per ADMM iteration,
/// starting at `first_iteration`) through the zero-copy seam and returns
/// `(seconds, allocations, bytes)` accumulated over them.
#[allow(clippy::too_many_arguments)]
fn drive(
    exec: &MemoizedExecutor,
    inputs: &[Vec<Complex64>],
    outputs: &mut [Vec<Complex64>],
    compute: &(dyn Fn(&[Complex64]) -> Vec<Complex64> + Sync),
    first_iteration: usize,
    iterations: usize,
) -> (f64, u64, u64) {
    let before = snapshot();
    let start = Instant::now();
    for it in first_iteration..first_iteration + iterations {
        exec.begin_iteration(it);
        let batch: Vec<ChunkRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(loc, input)| ChunkRequest {
                loc,
                input,
                compute,
            })
            .collect();
        let mut slots: Vec<&mut [Complex64]> =
            outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        exec.execute_batch_into(FftOpKind::Fu2D, &batch, &mut slots);
    }
    let seconds = start.elapsed().as_secs_f64();
    let (allocs, bytes) = delta(before, snapshot());
    (seconds, allocs, bytes)
}

/// Builds the per-stage breakdown of one steady window from the stage
/// histograms' count/sum deltas across it.
fn stage_breakdown(
    before: &MetricsSnapshot,
    after: &MetricsSnapshot,
    chunks: u64,
    measured_ns_per_chunk: f64,
) -> StageBreakdown {
    let per_chunk = |id: StageId| {
        let delta = after.stage(id).sum - before.stage(id).sum;
        delta as f64 / chunks as f64
    };
    // In STAGE_NAMES order, so the argmax below can index the names table.
    let stages = [
        per_chunk(StageId::Encode),
        per_chunk(StageId::CachePeek),
        per_chunk(StageId::IvfProbe),
        per_chunk(StageId::PayloadCopy),
        per_chunk(StageId::MissFft),
        per_chunk(StageId::Prefilter),
        per_chunk(StageId::Quantize),
    ];
    let stage_sum: f64 = stages.iter().sum();
    let top = stages
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| STAGE_NAMES[i])
        .unwrap_or("none");
    let fraction = stage_sum / measured_ns_per_chunk.max(1e-9);
    StageBreakdown {
        encode_ns_per_chunk: stages[0],
        cache_peek_ns_per_chunk: stages[1],
        ivf_probe_ns_per_chunk: stages[2],
        payload_copy_ns_per_chunk: stages[3],
        miss_fft_ns_per_chunk: stages[4],
        prefilter_ns_per_chunk: stages[5],
        quantize_ns_per_chunk: stages[6],
        stage_sum_ns_per_chunk: stage_sum,
        measured_ns_per_chunk,
        stage_sum_fraction: fraction,
        stage_sum_within_5pct: (fraction - 1.0).abs() <= 0.05,
        top_stage: top.to_string(),
    }
}

/// Snapshot of an executor's telemetry metrics (counters + stage
/// histograms); the executors here always run with telemetry enabled.
fn metrics_of(exec: &MemoizedExecutor) -> MetricsSnapshot {
    exec.telemetry()
        .snapshot()
        .expect("telemetry is enabled on every fig22 executor")
        .metrics
}

fn path_stats(
    exec: &MemoizedExecutor,
    seconds: f64,
    allocs: u64,
    bytes: u64,
    chunks: u64,
) -> PathStats {
    let total = exec.stats().total();
    PathStats {
        ns_per_chunk: seconds * 1e9 / chunks as f64,
        allocs_per_chunk: allocs as f64 / chunks as f64,
        alloc_bytes_per_chunk: bytes as f64 / chunks as f64,
        db_hits: total.db_hits,
        cache_hits: total.cache_hits,
        failed_memo: total.failed_memo,
        computed: total.computed,
    }
}

/// One sweep point: steady cache-hit ns/chunk versus exact-FFT ns/chunk at
/// chunk size `n`, both through `execute_batch_into`. The cache path needs
/// four warm-up dispatches under the doorkeeper (prefiltered first
/// sighting → miss + insert → db-hit promote → cache-pool warm) before the
/// steady all-cache-hit window.
fn sweep_point(n: usize, memo: MemoConfig, seed_base: u64) -> SweepPoint {
    let locations = 8usize;
    let steady = 4usize;
    let plan = FftPlan::new(n);
    let compute = move |x: &[Complex64]| {
        let mut v = x.to_vec();
        plan.process(&mut v, Direction::Forward);
        v
    };
    let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, n)).collect();
    let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; locations];
    let chunks = (steady * locations) as f64;

    let hit_exec = MemoizedExecutor::new(memo, encoder(), seed_base);
    let _ = drive(&hit_exec, &inputs, &mut outputs, &compute, 0, 4);
    let (hit_secs, _, _) = drive(&hit_exec, &inputs, &mut outputs, &compute, 4, steady);

    let miss_exec = MemoizedExecutor::new(
        MemoConfig {
            enabled: false,
            ..memo
        },
        encoder(),
        seed_base + 1,
    );
    let _ = drive(&miss_exec, &inputs, &mut outputs, &compute, 0, 1);
    let (miss_secs, _, _) = drive(&miss_exec, &inputs, &mut outputs, &compute, 1, steady);

    let cache_hit_ns = hit_secs * 1e9 / chunks;
    let miss_ns = miss_secs * 1e9 / chunks;
    SweepPoint {
        chunk_elems: n,
        cache_hit_ns_per_chunk: cache_hit_ns,
        miss_ns_per_chunk: miss_ns,
        measured_hit_speedup: miss_ns / cache_hit_ns.max(1e-9),
    }
}

fn main() {
    // Pin the rayon shim to one thread and run batches sequentially: the
    // subject under measurement is the per-chunk constant factor, and the
    // allocation gate must count one deterministic code path.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    header(
        "Figure 22",
        "zero-copy memo hits: hit ns/chunk, miss FFT throughput, allocations/chunk",
    );
    let smoke = smoke_from_args();
    let sweep_run = std::env::args().any(|a| a == "--sweep");
    let (n, locations, steady) = if smoke { (1024, 24, 8) } else { (4096, 32, 12) };
    let payload_bytes = (n * 16) as u64;
    println!(
        "chunk: {n} complex elems ({} KiB payload), {locations} locations, \
         {steady} steady-state iterations\n",
        payload_bytes / 1024
    );

    let plan = FftPlan::new(n);
    let compute = move |x: &[Complex64]| {
        let mut v = x.to_vec();
        plan.process(&mut v, Direction::Forward);
        v
    };
    let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, n)).collect();
    let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; locations];
    let memo = MemoConfig {
        warmup_iterations: 0,
        ..Default::default()
    };
    let chunks = (steady * locations) as u64;

    // --- cache-hit path: identical inputs every iteration; under the
    // doorkeeper the first sighting is prefiltered (fingerprint noted, no
    // key), so after the prefilter, populate (miss), promote (db-hit →
    // cache fill) and pool-warming rounds, every chunk is a compute-node
    // cache hit. The executor runs with telemetry *enabled*: the
    // allocation gates below thereby certify that the instrumented hit
    // path is still allocation-free, and the stage histograms feed the
    // breakdown.
    let exec = MemoizedExecutor::new(memo, encoder(), 22).with_telemetry(Telemetry::enabled());
    let _ = drive(&exec, &inputs, &mut outputs, &compute, 0, 4);
    let stages_before = metrics_of(&exec);
    // Region-level enforcement of the same envelope the JSON gate reports:
    // a reintroduced hit-path allocation aborts the bench run outright.
    let (secs, allocs, bytes) = mlr_bench::no_alloc_region!(
        "fig22 steady cache-hit window",
        MAX_HIT_ALLOCS as u64 * chunks,
        drive(&exec, &inputs, &mut outputs, &compute, 4, steady)
    );
    let stages_after = metrics_of(&exec);
    let cache_hit = path_stats(&exec, secs, allocs, bytes, chunks);
    let cache_hit_stages = stage_breakdown(
        &stages_before,
        &stages_after,
        chunks,
        cache_hit.ns_per_chunk,
    );
    assert_eq!(
        cache_hit.cache_hits,
        chunks + locations as u64,
        "steady window must be all cache hits"
    );

    // --- db-hit path: cache disabled, every steady chunk is a database hit
    // served through the shared payload buffer (warm-ups: prefiltered
    // sighting, populate, first db-hit round).
    let db_exec = MemoizedExecutor::new(
        MemoConfig {
            use_cache: false,
            ..memo
        },
        encoder(),
        23,
    )
    .with_telemetry(Telemetry::enabled());
    let _ = drive(&db_exec, &inputs, &mut outputs, &compute, 0, 3);
    let db_stages_before = metrics_of(&db_exec);
    let (secs, allocs, bytes) = drive(&db_exec, &inputs, &mut outputs, &compute, 3, steady);
    let db_stages_after = metrics_of(&db_exec);
    let db_hit = path_stats(&db_exec, secs, allocs, bytes, chunks);
    let db_hit_stages = stage_breakdown(
        &db_stages_before,
        &db_stages_after,
        chunks,
        db_hit.ns_per_chunk,
    );
    assert_eq!(
        db_hit.db_hits,
        chunks + locations as u64,
        "steady window must be all db hits"
    );

    // --- miss path: memoization disabled, every chunk recomputes the exact
    // FFT through the same batch seam.
    let miss_exec = MemoizedExecutor::new(
        MemoConfig {
            enabled: false,
            ..memo
        },
        encoder(),
        24,
    );
    let _ = drive(&miss_exec, &inputs, &mut outputs, &compute, 0, 1);
    let (secs, allocs, bytes) = drive(&miss_exec, &inputs, &mut outputs, &compute, 1, steady);
    let miss = path_stats(&miss_exec, secs, allocs, bytes, chunks);
    let miss_throughput = (chunks as f64 * n as f64) / secs;

    // --- prefilter path: a drifting-amplitude trace (each iteration 3×
    // the last) keeps every chunk's norm ratio far below τ = 0.92, so the
    // doorkeeper provably rejects every sighting — the prefilter-on
    // executor never encodes a key, while the prefilter-off twin pays the
    // full encode → probe → failed-memo path on the identical trace.
    let pf_iters = 8usize;
    let pf_on = MemoizedExecutor::new(memo, encoder(), 26);
    let pf_off = MemoizedExecutor::new(
        MemoConfig {
            prefilter: false,
            ..memo
        },
        encoder(),
        26,
    );
    let (mut on_secs, mut off_secs) = (0.0f64, 0.0f64);
    for it in 0..pf_iters {
        let amp = 3.0f64.powi(it as i32);
        let drift: Vec<Vec<Complex64>> = inputs
            .iter()
            .map(|c| c.iter().map(|z| z.scale(amp)).collect())
            .collect();
        let (s, _, _) = drive(&pf_on, &drift, &mut outputs, &compute, it, 1);
        on_secs += s;
        let (s, _, _) = drive(&pf_off, &drift, &mut outputs, &compute, it, 1);
        off_secs += s;
    }
    let pf_chunks = (pf_iters * locations) as u64;
    let pf_total = pf_on.stats().total();
    assert_eq!(
        pf_total.prefiltered, pf_chunks,
        "every drifting chunk must be prefiltered"
    );
    let skip_ns = on_secs * 1e9 / pf_chunks as f64;
    let full_ns = off_secs * 1e9 / pf_chunks as f64;
    let prefilter = PrefilterStats {
        skip_rate: pf_total.prefiltered as f64 / pf_chunks as f64,
        skipped_chunks: pf_total.prefiltered,
        skip_ns_per_chunk: skip_ns,
        full_path_ns_per_chunk: full_ns,
        saved_ns_per_chunk: full_ns - skip_ns,
    };

    let measured_hit_speedup = miss.ns_per_chunk / cache_hit.ns_per_chunk.max(1e-9);
    let measured_hit_beats_fft = measured_hit_speedup > 1.0;
    // Analytic recompute cost of the memoized op over a 2n element-touch
    // model of the hit (read the shared payload, write the grid window):
    // w·n·log2(n) / 2n — machine-independent, so CI can gate it tightly.
    let modeled_hit_speedup =
        mlr_memo::recompute_cost_estimate(FftOpKind::Fu2D, n) / (2.0 * n as f64);

    let hit_path_allocation_free = cache_hit.allocs_per_chunk <= MAX_HIT_ALLOCS
        && cache_hit.alloc_bytes_per_chunk <= MAX_HIT_ALLOC_BYTES;
    let zero_payload_clone = cache_hit.alloc_bytes_per_chunk < payload_bytes as f64 / 2.0
        && db_hit.alloc_bytes_per_chunk < payload_bytes as f64 / 2.0;

    // --- chunk-size sweep: where does the hit start beating the FFT?
    let sweep: Vec<SweepPoint> = if sweep_run {
        [256usize, 512, 1024, 2048, 4096, 8192, 16384]
            .iter()
            .enumerate()
            .map(|(i, &sz)| sweep_point(sz, memo, 30 + 2 * i as u64))
            .collect()
    } else {
        Vec::new()
    };
    let break_even_chunk_elems = sweep
        .iter()
        .find(|p| p.measured_hit_speedup >= 1.0)
        .map(|p| p.chunk_elems)
        .unwrap_or(0);
    let break_even_at_or_below_smoke_chunk =
        break_even_chunk_elems > 0 && break_even_chunk_elems <= SMOKE_CHUNK_ELEMS;

    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "path", "ns/chunk", "allocs/chunk", "bytes/chunk"
    );
    for (label, p) in [
        ("cache hit", &cache_hit),
        ("db hit", &db_hit),
        ("miss (FFT)", &miss),
    ] {
        println!(
            "{label:>12} {:>14.0} {:>14.2} {:>16.1}",
            p.ns_per_chunk, p.allocs_per_chunk, p.alloc_bytes_per_chunk
        );
    }
    println!();
    println!(
        "{:>12} {:>10} {:>8} {:>12} {:>11} {:>9} {:>14} {:>10} {:>11}",
        "path",
        "prefilter",
        "encode",
        "cache peek",
        "IVF probe",
        "quantize",
        "payload copy",
        "miss FFT",
        "stage sum"
    );
    for (label, b) in [("cache hit", &cache_hit_stages), ("db hit", &db_hit_stages)] {
        println!(
            "{label:>12} {:>10.0} {:>8.0} {:>12.0} {:>11.0} {:>9.0} {:>14.0} {:>10.0} {:>11.0}",
            b.prefilter_ns_per_chunk,
            b.encode_ns_per_chunk,
            b.cache_peek_ns_per_chunk,
            b.ivf_probe_ns_per_chunk,
            b.quantize_ns_per_chunk,
            b.payload_copy_ns_per_chunk,
            b.miss_fft_ns_per_chunk,
            b.stage_sum_ns_per_chunk,
        );
    }
    println!();
    if sweep_run {
        println!(
            "{:>12} {:>16} {:>14} {:>12}",
            "chunk elems", "cache hit ns", "miss ns", "hit speedup"
        );
        for p in &sweep {
            println!(
                "{:>12} {:>16.0} {:>14.0} {:>11.2}x",
                p.chunk_elems,
                p.cache_hit_ns_per_chunk,
                p.miss_ns_per_chunk,
                p.measured_hit_speedup
            );
        }
        println!();
        compare_row(
            "break-even chunk size (hit beats FFT)",
            &format!("≤ {SMOKE_CHUNK_ELEMS} elems"),
            &if break_even_chunk_elems > 0 {
                format!("{break_even_chunk_elems} elems")
            } else {
                "never".to_string()
            },
        );
    }
    compare_row(
        "hit-path top stage",
        "(informational)",
        &format!(
            "{} ({:.0} ns/chunk, stages explain {:.0}% of measured)",
            cache_hit_stages.top_stage,
            match cache_hit_stages.top_stage.as_str() {
                "encode" => cache_hit_stages.encode_ns_per_chunk,
                "cache_peek" => cache_hit_stages.cache_peek_ns_per_chunk,
                "ivf_probe" => cache_hit_stages.ivf_probe_ns_per_chunk,
                "payload_copy" => cache_hit_stages.payload_copy_ns_per_chunk,
                "prefilter" => cache_hit_stages.prefilter_ns_per_chunk,
                "quantize" => cache_hit_stages.quantize_ns_per_chunk,
                _ => cache_hit_stages.miss_fft_ns_per_chunk,
            },
            100.0 * cache_hit_stages.stage_sum_fraction
        ),
    );
    compare_row(
        "prefilter skip lane vs full miss path",
        "(informational)",
        &format!(
            "saves {:.0} ns/chunk at skip rate {:.2}",
            prefilter.saved_ns_per_chunk, prefilter.skip_rate
        ),
    );
    compare_row(
        "steady hit-path allocations per chunk",
        "~0 (key only)",
        &format!(
            "{:.2} allocs / {:.0} B",
            cache_hit.allocs_per_chunk, cache_hit.alloc_bytes_per_chunk
        ),
    );
    compare_row(
        "payload deep-clones on a hit",
        "zero",
        if zero_payload_clone {
            "zero"
        } else {
            "PRESENT"
        },
    );
    compare_row(
        "modeled hit speedup (w·n·log2 n / 2n)",
        "≥ 2×",
        &format!("{modeled_hit_speedup:.1}x"),
    );
    compare_row(
        "measured hit speedup vs exact FFT",
        "> 1.0×",
        &format!("{measured_hit_speedup:.1}x"),
    );
    compare_row(
        "miss-path FFT throughput",
        "(informational)",
        &format!(
            "{:.1} Melem/s ({}/chunk)",
            miss_throughput / 1e6,
            fmt_secs(miss.ns_per_chunk / 1e9)
        ),
    );

    assert!(
        hit_path_allocation_free,
        "hit path allocates: {:.2} allocs / {:.1} B per chunk (envelope {MAX_HIT_ALLOCS} / {MAX_HIT_ALLOC_BYTES} B)",
        cache_hit.allocs_per_chunk, cache_hit.alloc_bytes_per_chunk
    );
    assert!(
        zero_payload_clone,
        "a hit performed payload-sized allocations — a deep clone is back"
    );
    assert!(
        modeled_hit_speedup >= 2.0,
        "modeled hit speedup below 2x: {modeled_hit_speedup}"
    );
    assert!(
        measured_hit_beats_fft,
        "a memo hit must beat the FFT it replaces: measured {measured_hit_speedup:.2}x"
    );

    let record = Record {
        smoke,
        chunk_elems: n,
        payload_bytes,
        locations,
        steady_iterations: steady,
        cache_hit,
        db_hit,
        miss,
        cache_hit_stages,
        db_hit_stages,
        prefilter,
        miss_throughput_elems_per_sec: miss_throughput,
        measured_hit_speedup,
        measured_hit_beats_fft,
        modeled_hit_speedup,
        hit_path_allocation_free,
        zero_payload_clone,
        sweep_run,
        sweep,
        break_even_chunk_elems,
        break_even_at_or_below_smoke_chunk,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_hotpath.json", &json).is_ok() {
                println!("\n[record written to BENCH_hotpath.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig22_hotpath", &record);
}
