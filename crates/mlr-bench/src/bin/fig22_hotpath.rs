//! Figure 22 (beyond the paper): the zero-copy, allocation-free chunk hot
//! path.
//!
//! mLR's premise is that a memo hit must be far cheaper than the FFT it
//! replaces. This harness measures the *constant factors* of that claim on
//! the real executor seam (`FftExecutor::execute_batch_into`):
//!
//! * **hit path** — steady-state cache-hit and db-hit cost per chunk
//!   (ns/chunk), with every payload handed out as a shared `Arc<[Complex64]>`
//!   and copied exactly once, straight into the caller's output slice;
//! * **miss path** — exact-FFT throughput through the same seam (the work a
//!   hit avoids);
//! * **allocator traffic** — allocations and bytes per steady-state hit
//!   chunk, measured by the counting global allocator. This is the
//!   deterministic CI gate: a reintroduced payload deep-clone (the pre-PR-5
//!   behaviour cloned every hit out of the store) immediately shows up as
//!   payload-sized allocations per chunk.
//!
//! Gated in CI (`ci/bench_baseline.json`): `hit_path_allocation_free` and
//! `zero_payload_clone` must hold exactly, and the machine-independent
//! `modeled_hit_speedup` — the analytic recompute cost `w·n·log2 n` over a
//! `2n` element-touch model of the hit memcpy — must stay ≥ 2× (it is
//! ~20× at the smoke chunk size). Wall-clock columns are informational.
//!
//! The machine-readable record lands in `BENCH_hotpath.json` (and under
//! `target/experiments/`).

use mlr_bench::alloc::{delta, snapshot, CountingAllocator};
use mlr_bench::{compare_row, fmt_secs, header, smoke_from_args, write_record};
use mlr_fft::fft::{Direction, FftPlan};
use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use mlr_memo::{EncoderConfig, MemoConfig, MemoizedExecutor};
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct PathStats {
    ns_per_chunk: f64,
    allocs_per_chunk: f64,
    alloc_bytes_per_chunk: f64,
    db_hits: u64,
    cache_hits: u64,
    failed_memo: u64,
    computed: u64,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    chunk_elems: usize,
    payload_bytes: u64,
    locations: usize,
    steady_iterations: usize,
    cache_hit: PathStats,
    db_hit: PathStats,
    miss: PathStats,
    miss_throughput_elems_per_sec: f64,
    /// Measured miss-ns / cache-hit-ns on this machine (informational).
    measured_hit_speedup: f64,
    /// Machine-independent: analytic recompute cost over the 2n hit-copy
    /// model (the CI gate).
    modeled_hit_speedup: f64,
    /// Steady-state cache-hit path stays within the allocation envelope
    /// (≤ MAX_HIT_ALLOCS allocations and ≤ MAX_HIT_ALLOC_BYTES per chunk).
    hit_path_allocation_free: bool,
    /// No hit chunk allocated anything payload-sized: the stored value is
    /// shared, never deep-cloned.
    zero_payload_clone: bool,
}

/// Allocation envelope of one steady-state cache-hit chunk: the encoded key
/// (the one intended allocation) plus slack for amortised batch plumbing.
const MAX_HIT_ALLOCS: f64 = 4.0;
const MAX_HIT_ALLOC_BYTES: f64 = 1024.0;

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 16,
        learning_rate: 1e-3,
    }
}

fn chunk(loc: usize, n: usize) -> Vec<Complex64> {
    let mut rng = seeded(0xF1622 ^ loc as u64);
    (0..n)
        .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect()
}

/// Drives `iterations` whole-grid batch dispatches (one per ADMM iteration,
/// starting at `first_iteration`) through the zero-copy seam and returns
/// `(seconds, allocations, bytes)` accumulated over them.
#[allow(clippy::too_many_arguments)]
fn drive(
    exec: &MemoizedExecutor,
    inputs: &[Vec<Complex64>],
    outputs: &mut [Vec<Complex64>],
    compute: &(dyn Fn(&[Complex64]) -> Vec<Complex64> + Sync),
    first_iteration: usize,
    iterations: usize,
) -> (f64, u64, u64) {
    let before = snapshot();
    let start = Instant::now();
    for it in first_iteration..first_iteration + iterations {
        exec.begin_iteration(it);
        let batch: Vec<ChunkRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(loc, input)| ChunkRequest {
                loc,
                input,
                compute,
            })
            .collect();
        let mut slots: Vec<&mut [Complex64]> =
            outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        exec.execute_batch_into(FftOpKind::Fu2D, &batch, &mut slots);
    }
    let seconds = start.elapsed().as_secs_f64();
    let (allocs, bytes) = delta(before, snapshot());
    (seconds, allocs, bytes)
}

fn path_stats(
    exec: &MemoizedExecutor,
    seconds: f64,
    allocs: u64,
    bytes: u64,
    chunks: u64,
) -> PathStats {
    let total = exec.stats().total();
    PathStats {
        ns_per_chunk: seconds * 1e9 / chunks as f64,
        allocs_per_chunk: allocs as f64 / chunks as f64,
        alloc_bytes_per_chunk: bytes as f64 / chunks as f64,
        db_hits: total.db_hits,
        cache_hits: total.cache_hits,
        failed_memo: total.failed_memo,
        computed: total.computed,
    }
}

fn main() {
    // Pin the rayon shim to one thread and run batches sequentially: the
    // subject under measurement is the per-chunk constant factor, and the
    // allocation gate must count one deterministic code path.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    header(
        "Figure 22",
        "zero-copy memo hits: hit ns/chunk, miss FFT throughput, allocations/chunk",
    );
    let smoke = smoke_from_args();
    let (n, locations, steady) = if smoke { (1024, 24, 8) } else { (4096, 32, 12) };
    let payload_bytes = (n * 16) as u64;
    println!(
        "chunk: {n} complex elems ({} KiB payload), {locations} locations, \
         {steady} steady-state iterations\n",
        payload_bytes / 1024
    );

    let plan = FftPlan::new(n);
    let compute = move |x: &[Complex64]| {
        let mut v = x.to_vec();
        plan.process(&mut v, Direction::Forward);
        v
    };
    let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, n)).collect();
    let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; locations];
    let memo = MemoConfig {
        warmup_iterations: 0,
        ..Default::default()
    };
    let chunks = (steady * locations) as u64;

    // --- cache-hit path: identical inputs every iteration; after the
    // populate (miss) and promote (db-hit → cache fill) rounds plus one
    // pool-warming round, every chunk is a compute-node cache hit.
    let exec = MemoizedExecutor::new(memo, encoder(), 22);
    let _ = drive(&exec, &inputs, &mut outputs, &compute, 0, 3);
    let (secs, allocs, bytes) = drive(&exec, &inputs, &mut outputs, &compute, 3, steady);
    let cache_hit = path_stats(&exec, secs, allocs, bytes, chunks);
    assert_eq!(
        cache_hit.cache_hits,
        chunks + locations as u64,
        "steady window must be all cache hits"
    );

    // --- db-hit path: cache disabled, every steady chunk is a database hit
    // served through the shared payload buffer.
    let db_exec = MemoizedExecutor::new(
        MemoConfig {
            use_cache: false,
            ..memo
        },
        encoder(),
        23,
    );
    let _ = drive(&db_exec, &inputs, &mut outputs, &compute, 0, 2);
    let (secs, allocs, bytes) = drive(&db_exec, &inputs, &mut outputs, &compute, 2, steady);
    let db_hit = path_stats(&db_exec, secs, allocs, bytes, chunks);
    assert_eq!(
        db_hit.db_hits,
        chunks + locations as u64,
        "steady window must be all db hits"
    );

    // --- miss path: memoization disabled, every chunk recomputes the exact
    // FFT through the same batch seam.
    let miss_exec = MemoizedExecutor::new(
        MemoConfig {
            enabled: false,
            ..memo
        },
        encoder(),
        24,
    );
    let _ = drive(&miss_exec, &inputs, &mut outputs, &compute, 0, 1);
    let (secs, allocs, bytes) = drive(&miss_exec, &inputs, &mut outputs, &compute, 1, steady);
    let miss = path_stats(&miss_exec, secs, allocs, bytes, chunks);
    let miss_throughput = (chunks as f64 * n as f64) / secs;

    let measured_hit_speedup = miss.ns_per_chunk / cache_hit.ns_per_chunk.max(1e-9);
    // Analytic recompute cost of the memoized op over a 2n element-touch
    // model of the hit (read the shared payload, write the grid window):
    // w·n·log2(n) / 2n — machine-independent, so CI can gate it tightly.
    let modeled_hit_speedup =
        mlr_memo::recompute_cost_estimate(FftOpKind::Fu2D, n) / (2.0 * n as f64);

    let hit_path_allocation_free = cache_hit.allocs_per_chunk <= MAX_HIT_ALLOCS
        && cache_hit.alloc_bytes_per_chunk <= MAX_HIT_ALLOC_BYTES;
    let zero_payload_clone = cache_hit.alloc_bytes_per_chunk < payload_bytes as f64 / 2.0
        && db_hit.alloc_bytes_per_chunk < payload_bytes as f64 / 2.0;

    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "path", "ns/chunk", "allocs/chunk", "bytes/chunk"
    );
    for (label, p) in [
        ("cache hit", &cache_hit),
        ("db hit", &db_hit),
        ("miss (FFT)", &miss),
    ] {
        println!(
            "{label:>12} {:>14.0} {:>14.2} {:>16.1}",
            p.ns_per_chunk, p.allocs_per_chunk, p.alloc_bytes_per_chunk
        );
    }
    println!();
    compare_row(
        "steady hit-path allocations per chunk",
        "~0 (key only)",
        &format!(
            "{:.2} allocs / {:.0} B",
            cache_hit.allocs_per_chunk, cache_hit.alloc_bytes_per_chunk
        ),
    );
    compare_row(
        "payload deep-clones on a hit",
        "zero",
        if zero_payload_clone {
            "zero"
        } else {
            "PRESENT"
        },
    );
    compare_row(
        "modeled hit speedup (w·n·log2 n / 2n)",
        "≥ 2×",
        &format!("{modeled_hit_speedup:.1}x"),
    );
    compare_row(
        "measured hit speedup vs exact FFT",
        "(informational)",
        &format!("{measured_hit_speedup:.1}x"),
    );
    compare_row(
        "miss-path FFT throughput",
        "(informational)",
        &format!(
            "{:.1} Melem/s ({}/chunk)",
            miss_throughput / 1e6,
            fmt_secs(miss.ns_per_chunk / 1e9)
        ),
    );

    assert!(
        hit_path_allocation_free,
        "hit path allocates: {:.2} allocs / {:.1} B per chunk (envelope {MAX_HIT_ALLOCS} / {MAX_HIT_ALLOC_BYTES} B)",
        cache_hit.allocs_per_chunk, cache_hit.alloc_bytes_per_chunk
    );
    assert!(
        zero_payload_clone,
        "a hit performed payload-sized allocations — a deep clone is back"
    );
    assert!(
        modeled_hit_speedup >= 2.0,
        "modeled hit speedup below 2x: {modeled_hit_speedup}"
    );

    let record = Record {
        smoke,
        chunk_elems: n,
        payload_bytes,
        locations,
        steady_iterations: steady,
        cache_hit,
        db_hit,
        miss,
        miss_throughput_elems_per_sec: miss_throughput,
        measured_hit_speedup,
        modeled_hit_speedup,
        hit_path_allocation_free,
        zero_payload_clone,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_hotpath.json", &json).is_ok() {
                println!("\n[record written to BENCH_hotpath.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig22_hotpath", &record);
}
