//! Figure 22 (beyond the paper): the zero-copy, allocation-free chunk hot
//! path.
//!
//! mLR's premise is that a memo hit must be far cheaper than the FFT it
//! replaces. This harness measures the *constant factors* of that claim on
//! the real executor seam (`FftExecutor::execute_batch_into`):
//!
//! * **hit path** — steady-state cache-hit and db-hit cost per chunk
//!   (ns/chunk), with every payload handed out as a shared `Arc<[Complex64]>`
//!   and copied exactly once, straight into the caller's output slice;
//! * **miss path** — exact-FFT throughput through the same seam (the work a
//!   hit avoids);
//! * **allocator traffic** — allocations and bytes per steady-state hit
//!   chunk, measured by the counting global allocator. This is the
//!   deterministic CI gate: a reintroduced payload deep-clone (the pre-PR-5
//!   behaviour cloned every hit out of the store) immediately shows up as
//!   payload-sized allocations per chunk. The hit-path executors run with
//!   telemetry *enabled*, so the gate also certifies that the instrumented
//!   path stays allocation-free;
//! * **stage breakdown** — where the hit ns/chunk goes: encode, cache peek,
//!   IVF probe, payload copy and miss-FFT nanoseconds per chunk from the
//!   telemetry stage histograms, answering how the measured hit cost splits
//!   (the question the aggregate measured-vs-modeled speedup gap raised).
//!
//! Gated in CI (`ci/bench_baseline.json`): `hit_path_allocation_free` and
//! `zero_payload_clone` must hold exactly, and the machine-independent
//! `modeled_hit_speedup` — the analytic recompute cost `w·n·log2 n` over a
//! `2n` element-touch model of the hit memcpy — must stay ≥ 2× (it is
//! ~20× at the smoke chunk size). Wall-clock columns are informational.
//!
//! The machine-readable record lands in `BENCH_hotpath.json` (and under
//! `target/experiments/`).

use mlr_bench::alloc::{delta, snapshot, CountingAllocator};
use mlr_bench::{compare_row, fmt_secs, header, smoke_from_args, write_record};
use mlr_fft::fft::{Direction, FftPlan};
use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use mlr_memo::{EncoderConfig, MemoConfig, MemoizedExecutor};
use mlr_telemetry::{MetricsSnapshot, StageId, Telemetry, STAGE_NAMES};
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct PathStats {
    ns_per_chunk: f64,
    allocs_per_chunk: f64,
    alloc_bytes_per_chunk: f64,
    db_hits: u64,
    cache_hits: u64,
    failed_memo: u64,
    computed: u64,
}

/// Per-stage split of a steady-state hit chunk, from the telemetry stage
/// histograms recorded by the executor itself (encode → cache peek → IVF
/// probe → payload copy, plus the miss-FFT stage on recompute paths). This
/// answers the question the aggregate ns/chunk column cannot: *where* the
/// hit-path time goes.
#[derive(Serialize)]
struct StageBreakdown {
    encode_ns_per_chunk: f64,
    cache_peek_ns_per_chunk: f64,
    ivf_probe_ns_per_chunk: f64,
    payload_copy_ns_per_chunk: f64,
    miss_fft_ns_per_chunk: f64,
    /// Sum of the five stage columns.
    stage_sum_ns_per_chunk: f64,
    /// The wall-clock ns/chunk measured over the same steady window.
    measured_ns_per_chunk: f64,
    /// stage_sum / measured: how much of the measured time the stage timers
    /// explain (the remainder is untimed commit bookkeeping).
    stage_sum_fraction: f64,
    /// Whether the stage sum lands within 10 % of the measured ns/chunk.
    /// Timing-noisy, so informational — not a CI gate.
    stage_sum_within_10pct: bool,
    /// The most expensive stage of this path.
    top_stage: String,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    chunk_elems: usize,
    payload_bytes: u64,
    locations: usize,
    steady_iterations: usize,
    cache_hit: PathStats,
    db_hit: PathStats,
    miss: PathStats,
    /// Stage split of the steady cache-hit window (telemetry enabled).
    cache_hit_stages: StageBreakdown,
    /// Stage split of the steady db-hit window (telemetry enabled).
    db_hit_stages: StageBreakdown,
    miss_throughput_elems_per_sec: f64,
    /// Measured miss-ns / cache-hit-ns on this machine (informational).
    measured_hit_speedup: f64,
    /// Machine-independent: analytic recompute cost over the 2n hit-copy
    /// model (the CI gate).
    modeled_hit_speedup: f64,
    /// Steady-state cache-hit path stays within the allocation envelope
    /// (≤ MAX_HIT_ALLOCS allocations and ≤ MAX_HIT_ALLOC_BYTES per chunk).
    hit_path_allocation_free: bool,
    /// No hit chunk allocated anything payload-sized: the stored value is
    /// shared, never deep-cloned.
    zero_payload_clone: bool,
}

/// Allocation envelope of one steady-state cache-hit chunk: the encoded key
/// (the one intended allocation) plus slack for amortised batch plumbing.
const MAX_HIT_ALLOCS: f64 = 4.0;
const MAX_HIT_ALLOC_BYTES: f64 = 1024.0;

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 16,
        learning_rate: 1e-3,
    }
}

fn chunk(loc: usize, n: usize) -> Vec<Complex64> {
    let mut rng = seeded(0xF1622 ^ loc as u64);
    (0..n)
        .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect()
}

/// Drives `iterations` whole-grid batch dispatches (one per ADMM iteration,
/// starting at `first_iteration`) through the zero-copy seam and returns
/// `(seconds, allocations, bytes)` accumulated over them.
#[allow(clippy::too_many_arguments)]
fn drive(
    exec: &MemoizedExecutor,
    inputs: &[Vec<Complex64>],
    outputs: &mut [Vec<Complex64>],
    compute: &(dyn Fn(&[Complex64]) -> Vec<Complex64> + Sync),
    first_iteration: usize,
    iterations: usize,
) -> (f64, u64, u64) {
    let before = snapshot();
    let start = Instant::now();
    for it in first_iteration..first_iteration + iterations {
        exec.begin_iteration(it);
        let batch: Vec<ChunkRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(loc, input)| ChunkRequest {
                loc,
                input,
                compute,
            })
            .collect();
        let mut slots: Vec<&mut [Complex64]> =
            outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        exec.execute_batch_into(FftOpKind::Fu2D, &batch, &mut slots);
    }
    let seconds = start.elapsed().as_secs_f64();
    let (allocs, bytes) = delta(before, snapshot());
    (seconds, allocs, bytes)
}

/// Builds the per-stage breakdown of one steady window from the stage
/// histograms' count/sum deltas across it.
fn stage_breakdown(
    before: &MetricsSnapshot,
    after: &MetricsSnapshot,
    chunks: u64,
    measured_ns_per_chunk: f64,
) -> StageBreakdown {
    let per_chunk = |id: StageId| {
        let delta = after.stage(id).sum - before.stage(id).sum;
        delta as f64 / chunks as f64
    };
    let stages = [
        per_chunk(StageId::Encode),
        per_chunk(StageId::CachePeek),
        per_chunk(StageId::IvfProbe),
        per_chunk(StageId::PayloadCopy),
        per_chunk(StageId::MissFft),
    ];
    let stage_sum: f64 = stages.iter().sum();
    let top = stages
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| STAGE_NAMES[i])
        .unwrap_or("none");
    let fraction = stage_sum / measured_ns_per_chunk.max(1e-9);
    StageBreakdown {
        encode_ns_per_chunk: stages[0],
        cache_peek_ns_per_chunk: stages[1],
        ivf_probe_ns_per_chunk: stages[2],
        payload_copy_ns_per_chunk: stages[3],
        miss_fft_ns_per_chunk: stages[4],
        stage_sum_ns_per_chunk: stage_sum,
        measured_ns_per_chunk,
        stage_sum_fraction: fraction,
        stage_sum_within_10pct: (fraction - 1.0).abs() <= 0.10,
        top_stage: top.to_string(),
    }
}

/// Snapshot of an executor's telemetry metrics (counters + stage
/// histograms); the executors here always run with telemetry enabled.
fn metrics_of(exec: &MemoizedExecutor) -> MetricsSnapshot {
    exec.telemetry()
        .snapshot()
        .expect("telemetry is enabled on every fig22 executor")
        .metrics
}

fn path_stats(
    exec: &MemoizedExecutor,
    seconds: f64,
    allocs: u64,
    bytes: u64,
    chunks: u64,
) -> PathStats {
    let total = exec.stats().total();
    PathStats {
        ns_per_chunk: seconds * 1e9 / chunks as f64,
        allocs_per_chunk: allocs as f64 / chunks as f64,
        alloc_bytes_per_chunk: bytes as f64 / chunks as f64,
        db_hits: total.db_hits,
        cache_hits: total.cache_hits,
        failed_memo: total.failed_memo,
        computed: total.computed,
    }
}

fn main() {
    // Pin the rayon shim to one thread and run batches sequentially: the
    // subject under measurement is the per-chunk constant factor, and the
    // allocation gate must count one deterministic code path.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    header(
        "Figure 22",
        "zero-copy memo hits: hit ns/chunk, miss FFT throughput, allocations/chunk",
    );
    let smoke = smoke_from_args();
    let (n, locations, steady) = if smoke { (1024, 24, 8) } else { (4096, 32, 12) };
    let payload_bytes = (n * 16) as u64;
    println!(
        "chunk: {n} complex elems ({} KiB payload), {locations} locations, \
         {steady} steady-state iterations\n",
        payload_bytes / 1024
    );

    let plan = FftPlan::new(n);
    let compute = move |x: &[Complex64]| {
        let mut v = x.to_vec();
        plan.process(&mut v, Direction::Forward);
        v
    };
    let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, n)).collect();
    let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; locations];
    let memo = MemoConfig {
        warmup_iterations: 0,
        ..Default::default()
    };
    let chunks = (steady * locations) as u64;

    // --- cache-hit path: identical inputs every iteration; after the
    // populate (miss) and promote (db-hit → cache fill) rounds plus one
    // pool-warming round, every chunk is a compute-node cache hit. The
    // executor runs with telemetry *enabled*: the allocation gates below
    // thereby certify that the instrumented hit path is still
    // allocation-free, and the stage histograms feed the breakdown.
    let exec = MemoizedExecutor::new(memo, encoder(), 22).with_telemetry(Telemetry::enabled());
    let _ = drive(&exec, &inputs, &mut outputs, &compute, 0, 3);
    let stages_before = metrics_of(&exec);
    let (secs, allocs, bytes) = drive(&exec, &inputs, &mut outputs, &compute, 3, steady);
    let stages_after = metrics_of(&exec);
    let cache_hit = path_stats(&exec, secs, allocs, bytes, chunks);
    let cache_hit_stages = stage_breakdown(
        &stages_before,
        &stages_after,
        chunks,
        cache_hit.ns_per_chunk,
    );
    assert_eq!(
        cache_hit.cache_hits,
        chunks + locations as u64,
        "steady window must be all cache hits"
    );

    // --- db-hit path: cache disabled, every steady chunk is a database hit
    // served through the shared payload buffer.
    let db_exec = MemoizedExecutor::new(
        MemoConfig {
            use_cache: false,
            ..memo
        },
        encoder(),
        23,
    )
    .with_telemetry(Telemetry::enabled());
    let _ = drive(&db_exec, &inputs, &mut outputs, &compute, 0, 2);
    let db_stages_before = metrics_of(&db_exec);
    let (secs, allocs, bytes) = drive(&db_exec, &inputs, &mut outputs, &compute, 2, steady);
    let db_stages_after = metrics_of(&db_exec);
    let db_hit = path_stats(&db_exec, secs, allocs, bytes, chunks);
    let db_hit_stages = stage_breakdown(
        &db_stages_before,
        &db_stages_after,
        chunks,
        db_hit.ns_per_chunk,
    );
    assert_eq!(
        db_hit.db_hits,
        chunks + locations as u64,
        "steady window must be all db hits"
    );

    // --- miss path: memoization disabled, every chunk recomputes the exact
    // FFT through the same batch seam.
    let miss_exec = MemoizedExecutor::new(
        MemoConfig {
            enabled: false,
            ..memo
        },
        encoder(),
        24,
    );
    let _ = drive(&miss_exec, &inputs, &mut outputs, &compute, 0, 1);
    let (secs, allocs, bytes) = drive(&miss_exec, &inputs, &mut outputs, &compute, 1, steady);
    let miss = path_stats(&miss_exec, secs, allocs, bytes, chunks);
    let miss_throughput = (chunks as f64 * n as f64) / secs;

    let measured_hit_speedup = miss.ns_per_chunk / cache_hit.ns_per_chunk.max(1e-9);
    // Analytic recompute cost of the memoized op over a 2n element-touch
    // model of the hit (read the shared payload, write the grid window):
    // w·n·log2(n) / 2n — machine-independent, so CI can gate it tightly.
    let modeled_hit_speedup =
        mlr_memo::recompute_cost_estimate(FftOpKind::Fu2D, n) / (2.0 * n as f64);

    let hit_path_allocation_free = cache_hit.allocs_per_chunk <= MAX_HIT_ALLOCS
        && cache_hit.alloc_bytes_per_chunk <= MAX_HIT_ALLOC_BYTES;
    let zero_payload_clone = cache_hit.alloc_bytes_per_chunk < payload_bytes as f64 / 2.0
        && db_hit.alloc_bytes_per_chunk < payload_bytes as f64 / 2.0;

    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "path", "ns/chunk", "allocs/chunk", "bytes/chunk"
    );
    for (label, p) in [
        ("cache hit", &cache_hit),
        ("db hit", &db_hit),
        ("miss (FFT)", &miss),
    ] {
        println!(
            "{label:>12} {:>14.0} {:>14.2} {:>16.1}",
            p.ns_per_chunk, p.allocs_per_chunk, p.alloc_bytes_per_chunk
        );
    }
    println!();
    println!(
        "{:>12} {:>10} {:>12} {:>11} {:>14} {:>10} {:>11}",
        "path", "encode", "cache peek", "IVF probe", "payload copy", "miss FFT", "stage sum"
    );
    for (label, b) in [("cache hit", &cache_hit_stages), ("db hit", &db_hit_stages)] {
        println!(
            "{label:>12} {:>10.0} {:>12.0} {:>11.0} {:>14.0} {:>10.0} {:>11.0}",
            b.encode_ns_per_chunk,
            b.cache_peek_ns_per_chunk,
            b.ivf_probe_ns_per_chunk,
            b.payload_copy_ns_per_chunk,
            b.miss_fft_ns_per_chunk,
            b.stage_sum_ns_per_chunk,
        );
    }
    println!();
    compare_row(
        "hit-path top stage",
        "(informational)",
        &format!(
            "{} ({:.0} ns/chunk, stages explain {:.0}% of measured)",
            cache_hit_stages.top_stage,
            match cache_hit_stages.top_stage.as_str() {
                "encode" => cache_hit_stages.encode_ns_per_chunk,
                "cache_peek" => cache_hit_stages.cache_peek_ns_per_chunk,
                "ivf_probe" => cache_hit_stages.ivf_probe_ns_per_chunk,
                "payload_copy" => cache_hit_stages.payload_copy_ns_per_chunk,
                _ => cache_hit_stages.miss_fft_ns_per_chunk,
            },
            100.0 * cache_hit_stages.stage_sum_fraction
        ),
    );
    compare_row(
        "steady hit-path allocations per chunk",
        "~0 (key only)",
        &format!(
            "{:.2} allocs / {:.0} B",
            cache_hit.allocs_per_chunk, cache_hit.alloc_bytes_per_chunk
        ),
    );
    compare_row(
        "payload deep-clones on a hit",
        "zero",
        if zero_payload_clone {
            "zero"
        } else {
            "PRESENT"
        },
    );
    compare_row(
        "modeled hit speedup (w·n·log2 n / 2n)",
        "≥ 2×",
        &format!("{modeled_hit_speedup:.1}x"),
    );
    compare_row(
        "measured hit speedup vs exact FFT",
        "(informational)",
        &format!("{measured_hit_speedup:.1}x"),
    );
    compare_row(
        "miss-path FFT throughput",
        "(informational)",
        &format!(
            "{:.1} Melem/s ({}/chunk)",
            miss_throughput / 1e6,
            fmt_secs(miss.ns_per_chunk / 1e9)
        ),
    );

    assert!(
        hit_path_allocation_free,
        "hit path allocates: {:.2} allocs / {:.1} B per chunk (envelope {MAX_HIT_ALLOCS} / {MAX_HIT_ALLOC_BYTES} B)",
        cache_hit.allocs_per_chunk, cache_hit.alloc_bytes_per_chunk
    );
    assert!(
        zero_payload_clone,
        "a hit performed payload-sized allocations — a deep clone is back"
    );
    assert!(
        modeled_hit_speedup >= 2.0,
        "modeled hit speedup below 2x: {modeled_hit_speedup}"
    );

    let record = Record {
        smoke,
        chunk_elems: n,
        payload_bytes,
        locations,
        steady_iterations: steady,
        cache_hit,
        db_hit,
        miss,
        cache_hit_stages,
        db_hit_stages,
        miss_throughput_elems_per_sec: miss_throughput,
        measured_hit_speedup,
        modeled_hit_speedup,
        hit_path_allocation_free,
        zero_payload_clone,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_hotpath.json", &json).is_ok() {
                println!("\n[record written to BENCH_hotpath.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig22_hotpath", &record);
}
