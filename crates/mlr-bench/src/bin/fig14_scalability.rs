//! Figure 14: scalability of the FFT operations and of the whole ADMM-FFT
//! run over 1–16 GPUs (1K^3).
use mlr_bench::{compare_row, header, write_record};
use mlr_cluster::ScalingModel;
use mlr_sim::workload::{AdmmWorkload, ProblemSize};

fn main() {
    header(
        "Figure 14",
        "FFT-operation time and overall time vs number of GPUs (1K^3)",
    );
    let model = ScalingModel::new(AdmmWorkload::new(ProblemSize::paper_1k()), 60);
    let sweep = model.sweep(&[1, 2, 4, 8, 16]);
    println!(
        "{:>5} {:>6} {:>12} {:>12} {:>14}",
        "GPUs", "nodes", "Fu1D (s)", "Fu2D (s)", "overall (s)"
    );
    for p in &sweep {
        println!(
            "{:>5} {:>6} {:>12.3} {:>12.3} {:>14.1}",
            p.gpus, p.nodes, p.fu1d_seconds, p.fu2d_seconds, p.overall_seconds
        );
    }
    println!();
    let fu1d_speedup = sweep[0].fu1d_seconds / sweep[4].fu1d_seconds;
    compare_row(
        "Fu1D speedup 1 -> 16 GPUs",
        "2.2x",
        &format!("{fu1d_speedup:.1}x"),
    );
    let s24 = sweep[1].overall_seconds / sweep[2].overall_seconds;
    let s48 = sweep[2].overall_seconds / sweep[3].overall_seconds;
    compare_row(
        "overall speedup 2 -> 4 GPUs",
        "1.36x",
        &format!("{s24:.2}x"),
    );
    compare_row(
        "overall speedup 4 -> 8 GPUs",
        "~1x (slight loss)",
        &format!("{s48:.2}x"),
    );
    write_record("fig14_scalability", &sweep);
}
