//! Figure 2: CPU memory consumption and phase breakdown of one ADMM iteration.
use mlr_bench::{compare_row, header, pct, write_record};
use mlr_offload::IterationProfile;
use mlr_sim::memory::gib;
use mlr_sim::workload::{AdmmWorkload, ProblemSize};
use mlr_sim::CostModel;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    variables_gib: Vec<(String, f64)>,
    total_gib: f64,
    lsp_fraction: f64,
}

fn main() {
    header(
        "Figure 2",
        "CPU memory breakdown of one ADMM iteration (1.5K-projection problem)",
    );
    let workload = AdmmWorkload::new(ProblemSize::paper_1_5k());
    let cost = CostModel::polaris(1);
    let total = workload.total_bytes() as f64;

    let mut variables_gib = Vec::new();
    println!("{:<18} {:>10} {:>8}", "variable", "GiB", "share");
    for v in workload.variables() {
        println!(
            "{:<18} {:>10.1} {:>8}",
            v.name,
            gib(v.bytes),
            pct(v.bytes as f64 / total)
        );
        variables_gib.push((v.name, gib(v.bytes)));
    }
    println!();
    compare_row(
        "psi share of memory",
        "12 %",
        &pct(workload.variables()[0].bytes as f64 / total),
    );
    compare_row(
        "lambda share of memory",
        "12 %",
        &pct(workload.variables()[1].bytes as f64 / total),
    );
    let g_total = workload.variables()[2].bytes + workload.variables()[3].bytes;
    compare_row(
        "g + g_prev share of memory",
        "24 %",
        &pct(g_total as f64 / total),
    );
    compare_row(
        "total CPU memory (1.5K case)",
        "~300 GB",
        &format!("{:.0} GiB", gib(workload.total_bytes())),
    );

    let profile = IterationProfile::from_workload(&workload, &cost);
    let lsp = profile.phases[0].2 - profile.phases[0].1;
    let lsp_fraction = lsp / profile.duration;
    compare_row("LSP share of iteration time", "> 67 %", &pct(lsp_fraction));

    write_record(
        "fig02_memory_breakdown",
        &Record {
            variables_gib,
            total_gib: gib(workload.total_bytes()),
            lsp_fraction,
        },
    );
}
