//! Figure 25: the chaos harness — a multi-job serving workload replayed
//! under swept fault plans.
//!
//! The headline invariant of the whole fault layer: memoization is *only*
//! an acceleration, so every injected fault has a provably correct
//! degradation path (recompute the FFT). The harness replays the same
//! replicated-job workload fault-free and under each swept [`FaultPlan`]
//! (node crash + restart, link degradation, slow stripe, and a seeded
//! combination) and gates:
//!
//! * **bit identity** — every faulted run reconstructs bit-identically to
//!   the fault-free baseline (`bit_identical_all`, gated). The workload
//!   pins τ at 0.9999 so every store hit is exact; a fault that degrades a
//!   hit to a miss then recomputes the very value the hit would have
//!   served.
//! * **bounded degradation** — the worst faulted hit rate stays within a
//!   fixed band of the baseline (`degradation_bounded`, gated).
//! * **monotone recovery** — after the crash plan's restart purges the
//!   node, per-job hit rates of the post-restart jobs are non-decreasing
//!   (`recovery_monotone`, gated), and the store's own recovery clock
//!   reaches half the pre-crash hit rate (`recovery_measured`, gated).
//! * **replica saves** — the replica set rescues at least one would-be hit
//!   on the crashed node (`replica_saves_positive`, gated).
//!
//! Fault windows are placed in *logical store ticks* measured from the
//! baseline run's own job boundaries — no wall clock anywhere (the
//! `fault-wall-clock` lint rule holds this file to that even though it is a
//! harness binary). The record lands in `BENCH_faults.json`.

use mlr_bench::{compare_row, header, pct, smoke_from_args, write_record};
use mlr_core::MlrConfig;
use mlr_memo::{FaultStats, NodeTopology};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use mlr_sim::faults::FaultPlan;
use serde::Serialize;

#[derive(Serialize)]
struct PlanOutcome {
    name: String,
    hit_rate: f64,
    hit_rate_drop: f64,
    bit_identical: bool,
    degraded_accesses: u64,
    replica_saved_hits: u64,
    lost_entries: u64,
    crashes: u64,
    restarts: u64,
    recovery_ticks: Option<u64>,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    nodes: usize,
    jobs: usize,
    iterations: usize,
    tau: f64,
    baseline_hit_rate: f64,
    plans: Vec<PlanOutcome>,
    /// CI gate: every faulted run reconstructs bit-identically to the
    /// fault-free baseline.
    bit_identical_all: bool,
    /// Worst hit-rate drop across the swept plans.
    max_hit_rate_drop: f64,
    /// CI gate: the worst drop stays inside the allowed band.
    degradation_bounded: bool,
    /// CI gate: post-restart per-job hit rates are non-decreasing.
    recovery_monotone: bool,
    /// CI gate: the recovery clock reached half the pre-crash hit rate.
    recovery_measured: bool,
    /// Hits on the crashed node rescued by the replica set (crash plan).
    replica_saves: u64,
    /// CI gate: `replica_saves > 0`.
    replica_saves_positive: bool,
    /// Per-job hit rates of the jobs that started after the restart.
    post_restart_hit_rates: Vec<f64>,
}

/// One full workload replay: `jobs` identical jobs back to back on one
/// worker over a topology-configured runtime, optionally under a plan.
struct RunOutcome {
    /// Per-job reconstruction bits (the bit-identity evidence).
    bits: Vec<Vec<u64>>,
    /// Per-job store hit rate (query/hit deltas between job boundaries).
    per_job_hit_rate: Vec<f64>,
    /// Store tick at each job boundary (logical time, never wall time).
    job_end_ticks: Vec<u64>,
    hit_rate: f64,
    faults: Option<FaultStats>,
}

fn run_workload(
    config: &MlrConfig,
    jobs: usize,
    nodes: usize,
    plan: Option<FaultPlan>,
) -> RunOutcome {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: jobs + 2,
        topology: Some(NodeTopology::with_nodes(nodes)),
        fault_plan: plan,
        ..RuntimeConfig::matching(config)
    });
    let mut bits = Vec::with_capacity(jobs);
    let mut per_job_hit_rate = Vec::with_capacity(jobs);
    let mut job_end_ticks = Vec::with_capacity(jobs);
    let (mut prev_queries, mut prev_hits) = (0u64, 0u64);
    for i in 0..jobs {
        let report = rt
            .submit(ReconJob::new(format!("job-{i}"), *config))
            .expect("queue has room")
            .wait_report()
            .expect("job completes");
        bits.push(
            report
                .reconstruction
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        );
        let store = rt.stats().store;
        let (dq, dh) = (store.queries - prev_queries, store.hits - prev_hits);
        per_job_hit_rate.push(if dq == 0 { 0.0 } else { dh as f64 / dq as f64 });
        (prev_queries, prev_hits) = (store.queries, store.hits);
        job_end_ticks.push(
            rt.distributed()
                .expect("runtime was configured with a topology")
                .inner()
                .current_tick(),
        );
    }
    let stats = rt.shutdown();
    RunOutcome {
        bits,
        per_job_hit_rate,
        job_end_ticks,
        hit_rate: stats.store.hit_rate(),
        faults: stats.fault_stats().cloned(),
    }
}

fn main() {
    header(
        "Figure 25",
        "chaos harness: multi-job workload under swept fault plans, bit-identity gated",
    );
    let smoke = smoke_from_args();
    // Memoizable chunk reuse only appears from the third ADMM iteration
    // onward (earlier iterations run exact), so 3 is the floor that gives
    // the store any traffic at all.
    let (jobs, iterations, grid) = if smoke { (8, 3, 12) } else { (10, 4, 16) };
    let nodes = 4usize;
    let tau = 0.9999;
    let config = MlrConfig::quick(grid, 8)
        .with_iterations(iterations)
        .with_tau(tau);
    let shards = RuntimeConfig::matching(&config).shards;
    println!(
        "{jobs} identical jobs x {iterations} ADMM iterations over {nodes} memory nodes, tau {tau}\n"
    );

    // The fault-free baseline also measures the job boundaries in logical
    // store ticks — the plans below are placed relative to those.
    let baseline = run_workload(&config, jobs, nodes, None);
    let t = |i: usize| baseline.job_end_ticks[i];
    let horizon = t(jobs - 1);
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("node-crash", FaultPlan::new(1).crash_window(0, t(3), t(4))),
        (
            "link-degrade",
            FaultPlan::new(2).degrade_window(1, t(1), t(5), 0.25, 5.0e-6),
        ),
        (
            "stripe-stall",
            FaultPlan::new(3).stall_window(3, t(0), t(6), 2.0e-6),
        ),
        (
            "seeded-combo",
            FaultPlan::seeded(0xFA11, nodes, shards, horizon),
        ),
    ];

    let mut outcomes = Vec::new();
    let mut crash_run = None;
    for (name, plan) in &plans {
        let run = run_workload(&config, jobs, nodes, Some(plan.clone()));
        let faults = run.faults.clone().expect("plan armed");
        let bit_identical = run.bits == baseline.bits;
        let drop = (baseline.hit_rate - run.hit_rate).max(0.0);
        compare_row(
            &format!("{name}: reconstruction vs fault-free"),
            "bit-identical",
            if bit_identical {
                "bit-identical"
            } else {
                "DIVERGED"
            },
        );
        compare_row(
            &format!("{name}: hit rate (baseline {})", pct(baseline.hit_rate)),
            "bounded drop",
            &format!("{} (drop {})", pct(run.hit_rate), pct(drop)),
        );
        outcomes.push(PlanOutcome {
            name: name.to_string(),
            hit_rate: run.hit_rate,
            hit_rate_drop: drop,
            bit_identical,
            degraded_accesses: faults.degraded_accesses,
            replica_saved_hits: faults.replica_saved_hits,
            lost_entries: faults.lost_entries,
            crashes: faults.crashes,
            restarts: faults.restarts,
            recovery_ticks: faults.recovery_ticks_to_half_hit_rate,
        });
        if *name == "node-crash" {
            crash_run = Some(run);
        }
    }

    // Recovery gates, all from the crash plan's own run: jobs that started
    // at or after the restart tick form the recovery curve.
    let crash_run = crash_run.expect("crash plan swept");
    let crash_faults = crash_run.faults.clone().expect("plan armed");
    let restart_tick = t(4);
    let post_restart: Vec<f64> = (0..jobs)
        .filter(|&i| i > 0 && crash_run.job_end_ticks[i - 1] >= restart_tick)
        .map(|i| crash_run.per_job_hit_rate[i])
        .collect();
    let recovery_monotone =
        post_restart.len() >= 2 && post_restart.windows(2).all(|w| w[1] >= w[0]);
    let recovery_measured = crash_faults.recovery_ticks_to_half_hit_rate.is_some();
    let replica_saves = crash_faults.replica_saved_hits;

    let bit_identical_all = outcomes.iter().all(|o| o.bit_identical);
    let max_hit_rate_drop = outcomes.iter().map(|o| o.hit_rate_drop).fold(0.0, f64::max);
    let degradation_bounded = max_hit_rate_drop <= 0.5;

    compare_row(
        "recovery curve after restart",
        "monotone non-decreasing",
        &format!(
            "{} ({} post-restart jobs)",
            if recovery_monotone {
                "monotone"
            } else {
                "NOT MONOTONE"
            },
            post_restart.len()
        ),
    );
    compare_row(
        "recovery ticks to half hit rate",
        "measured",
        &crash_faults
            .recovery_ticks_to_half_hit_rate
            .map_or("NOT REACHED".to_string(), |t| format!("{t} ticks")),
    );
    compare_row(
        "replica-set saves on the crashed node",
        "> 0",
        &format!(
            "{replica_saves} saved / {} degraded / {} lost entries",
            crash_faults.degraded_accesses, crash_faults.lost_entries
        ),
    );

    assert!(
        bit_identical_all,
        "a fault plan changed the reconstruction — the degradation path is not value-neutral"
    );
    assert!(
        degradation_bounded,
        "hit rate dropped {max_hit_rate_drop} under faults (bound 0.5)"
    );
    assert!(
        recovery_monotone,
        "post-restart hit rates are not monotone: {post_restart:?}"
    );
    assert!(recovery_measured, "recovery clock never reached half rate");
    assert!(replica_saves > 0, "replica set never saved a hit");

    let record = Record {
        smoke,
        nodes,
        jobs,
        iterations,
        tau,
        baseline_hit_rate: baseline.hit_rate,
        plans: outcomes,
        bit_identical_all,
        max_hit_rate_drop,
        degradation_bounded,
        recovery_monotone,
        recovery_measured,
        replica_saves,
        replica_saves_positive: replica_saves > 0,
        post_restart_hit_rates: post_restart,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_faults.json", &json).is_ok() {
                println!("\n[record written to BENCH_faults.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig25_faults", &record);
}
