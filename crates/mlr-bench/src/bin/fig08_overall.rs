//! Figure 8: overall performance of mLR vs the original ADMM-FFT on the
//! 1K³, (1.5K)³ and (2K)³ problems (normalized execution time).
use mlr_bench::{compare_row, header, scale_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, PaperScaleProjection, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    measured_case_distribution: (f64, f64, f64),
    projections: Vec<PaperScaleProjection>,
    mean_improvement_percent: f64,
}

fn main() {
    header(
        "Figure 8",
        "overall normalized time: mLR vs original ADMM-FFT",
    );
    let scale = scale_from_args();
    let n = scale.volume_size();
    let iterations = if scale == Scale::Tiny { 8 } else { 15 };
    let pipeline = MlrPipeline::new(MlrConfig::quick(n, n / 2).with_iterations(iterations));
    let report = pipeline.run_comparison();
    println!(
        "measured at {n}^3: accuracy {:.3}, FFT invocations avoided {}, case distribution (fail/db/cache) = ({:.2}, {:.2}, {:.2})\n",
        report.accuracy,
        mlr_bench::pct(report.avoided_fraction),
        report.case_distribution.0,
        report.case_distribution.1,
        report.case_distribution.2
    );

    // Project onto the paper's three problem sizes with the measured reuse
    // behaviour (falling back to the paper's own distribution when the small
    // run produced too few hits to be representative).
    let dist = if report.avoided_fraction > 0.05 {
        report.case_distribution
    } else {
        (0.53, 0.19, 0.28)
    };
    let paper_norm = [
        ("1K^3", 1024usize, 0.654),
        ("1.5K^3", 1536, 0.414),
        ("2K^3", 2048, 0.363),
    ];
    let mut projections = Vec::new();
    for &(label, size, paper) in &paper_norm {
        let p = pipeline.project_to_paper_scale(size, dist);
        compare_row(
            &format!("normalized time, {label}"),
            &format!("{paper:.3}"),
            &format!("{:.3}", p.normalized_time),
        );
        projections.push(p);
    }
    let mean_improvement = projections
        .iter()
        .map(|p| p.improvement_percent())
        .sum::<f64>()
        / projections.len() as f64;
    compare_row(
        "average improvement",
        "52.8 %",
        &format!("{mean_improvement:.1} %"),
    );
    write_record(
        "fig08_overall",
        &Record {
            measured_case_distribution: report.case_distribution,
            projections,
            mean_improvement_percent: mean_improvement,
        },
    );
}
