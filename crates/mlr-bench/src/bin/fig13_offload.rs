//! Figure 13 + §5.1: ADMM-Offload vs greedy and LRU offloading — RSS over
//! time, peak memory, execution time and the MT metric.
use mlr_bench::{compare_row, header, write_record};
use mlr_offload::simulate::simulate_all;
use mlr_offload::IterationProfile;
use mlr_sim::memory::gib;
use mlr_sim::workload::{AdmmWorkload, ProblemSize};
use mlr_sim::CostModel;

fn main() {
    header(
        "Figure 13",
        "ADMM-Offload vs no offload, greedy offload and LRU offload (1K^3)",
    );
    let workload = AdmmWorkload::new(ProblemSize::paper_1k());
    let cost = CostModel::polaris(1);
    let profile = IterationProfile::from_workload(&workload, &cost);
    let traces = simulate_all(&profile, &cost, 5);

    println!(
        "{:<24} {:>12} {:>14} {:>12} {:>10} {:>8}",
        "strategy", "peak (GiB)", "time (s)", "mem saving", "perf loss", "MT"
    );
    for t in &traces {
        println!(
            "{:<24} {:>12.1} {:>14.1} {:>12} {:>10} {:>8.2}",
            t.label,
            gib(t.peak_bytes),
            t.total_seconds,
            mlr_bench::pct(t.memory_saving),
            mlr_bench::pct(t.performance_loss),
            t.mt
        );
    }
    println!();
    let none = &traces[0];
    let greedy = &traces[1];
    let lru = &traces[2];
    let planned = &traces[3];
    compare_row(
        "peak memory without offload",
        "~121 GB",
        &format!("{:.0} GiB", gib(none.peak_bytes)),
    );
    compare_row(
        "greedy offload: saving / loss / MT",
        "42 % / 81.5 % / 0.51",
        &format!(
            "{} / {} / {:.2}",
            mlr_bench::pct(greedy.memory_saving),
            mlr_bench::pct(greedy.performance_loss),
            greedy.mt
        ),
    );
    compare_row(
        "ADMM-Offload: saving / loss / MT",
        "29 % / 21 % / 1.38",
        &format!(
            "{} / {} / {:.2}",
            mlr_bench::pct(planned.memory_saving),
            mlr_bench::pct(planned.performance_loss),
            planned.mt
        ),
    );
    compare_row(
        "ADMM-Offload vs LRU offloading",
        "40.5 % faster",
        &mlr_bench::pct(1.0 - planned.total_seconds / lru.total_seconds),
    );
    write_record("fig13_offload", &traces);
}
