//! Figure 10 + §6.4: memoization breakdown per FFT operator — original
//! computation vs failed memoization vs successful memoization vs cache hit —
//! and the distribution of the three cases.
use mlr_bench::{compare_row, fmt_secs, header, scale_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, Scale};
use mlr_lamino::FftOpKind;
use mlr_sim::workload::{AdmmWorkload, ProblemSize};
use mlr_sim::CostModel;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    case_distribution: (f64, f64, f64),
    per_op_avoided: Vec<(String, f64)>,
    paper_scale_case_seconds: Vec<(String, f64, f64, f64, f64)>,
}

fn main() {
    header(
        "Figure 10",
        "memoization breakdown per operator, and the §6.4 case distribution",
    );
    let scale = scale_from_args();
    let n = scale.volume_size();
    let iterations = if scale == Scale::Tiny { 8 } else { 20 };
    let pipeline = MlrPipeline::new(MlrConfig::quick(n, n / 2).with_iterations(iterations));
    let (_result, executor) = pipeline.run_memoized();
    let stats = executor.stats();

    let mut per_op_avoided = Vec::new();
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12}",
        "op", "computed", "failed memo", "db hits", "cache hits"
    );
    for op in [
        FftOpKind::Fu1D,
        FftOpKind::Fu1DAdj,
        FftOpKind::Fu2D,
        FftOpKind::Fu2DAdj,
    ] {
        let s = stats.op(op);
        println!(
            "{:<8} {:>10} {:>12} {:>10} {:>12}",
            op.label(),
            s.computed,
            s.failed_memo,
            s.db_hits,
            s.cache_hits
        );
        per_op_avoided.push((op.label().to_string(), s.avoided_fraction()));
    }
    let (fail, db, cache) = stats.case_distribution();
    println!();
    compare_row(
        "case distribution (fail / db / cache)",
        "53 % / 19 % / 28 %",
        &format!(
            "{:.0} % / {:.0} % / {:.0} %",
            100.0 * fail,
            100.0 * db,
            100.0 * cache
        ),
    );
    compare_row(
        "FFT computation avoided (USFFT ops)",
        "~47 %",
        &mlr_bench::pct(stats.total().avoided_fraction()),
    );

    // Paper-scale per-case timing for one chunk (cost-model projection).
    let size = ProblemSize::paper_1k();
    let w = AdmmWorkload::new(size);
    let cost = CostModel::polaris(1);
    let chunk_fraction = 1.0 / size.num_chunks() as f64;
    let value_bytes = 16.0 * size.voxels() as f64 * chunk_fraction;
    let mut paper_rows = Vec::new();
    println!("\nper-chunk time at 1K^3 (cost model): original / failed memo / db hit / cache hit");
    for (label, stage) in [("Fu1D", w.fu1d_time(&cost)), ("Fu2D", w.fu2d_time(&cost))] {
        let orig = stage.max(cost.pcie_time(w.stage_transfer_bytes())) * chunk_fraction;
        let encode = cost.cnn_encode_time((size.voxels() as f64 * chunk_fraction) as usize);
        let failed = orig + encode + cost.ann_query_time(1_000_000, 60, 1, 8);
        let db_hit =
            encode + cost.ann_query_time(1_000_000, 60, 1, 8) + cost.network_bulk_time(value_bytes);
        let cache_hit = encode + cost.dram_copy_time(value_bytes);
        println!(
            "  {label:<6} {} / {} / {} / {}",
            fmt_secs(orig),
            fmt_secs(failed),
            fmt_secs(db_hit),
            fmt_secs(cache_hit)
        );
        paper_rows.push((label.to_string(), orig, failed, db_hit, cache_hit));
    }
    println!("(shape check: failed memo ~= original; db hit far cheaper; cache hit cheaper still)");
    write_record(
        "fig10_memo_breakdown",
        &Record {
            case_distribution: (fail, db, cache),
            per_op_avoided,
            paper_scale_case_seconds: paper_rows,
        },
    );
}
