//! Figure 21 (beyond the paper): the deadline-aware serving front-end —
//! offered load × deadline tightness vs deadline-miss rate, plus the
//! deterministic serving guarantees CI gates on.
//!
//! The mLR runtime serves a shared facility: many users submit
//! reconstruction requests against one memo store, each with an
//! acquisition-driven deadline. This harness sweeps the offered load
//! (concurrent requests per 2-worker front-end) against deadline budgets
//! (multiples of the calibrated single-job time) and records the miss rate
//! and slack percentiles per cell — the serving analogue of a latency/SLO
//! curve. Tight budgets under high load miss; generous budgets do not.
//!
//! On top of the sweep, four deterministic guarantees are asserted (and
//! gated in CI through `ci/bench_baseline.json`):
//!
//! * **unloaded miss rate is zero** — a lone request with a generous
//!   deadline through the front-end always meets it;
//! * **bit identity** — that request's reconstruction equals
//!   `MlrPipeline::run_memoized`, bit for bit (the serving layer is pure
//!   plumbing);
//! * **cancelled-while-queued never runs** — it resolves `Cancelled`
//!   without executing;
//! * **expired-before-pop never runs** — it resolves `Expired` without
//!   executing.
//!
//! The machine-readable record lands in `BENCH_serving.json` (and, like
//! every harness, under `target/experiments/`).

use mlr_bench::{compare_row, header, smoke_from_args, spin_until, write_record};
use mlr_core::{MlrConfig, MlrPipeline};
use mlr_runtime::{Deadline, JobPhase, JobStatus, RuntimeConfig, ServeFront, ServeRequest};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct LoadCell {
    jobs: usize,
    deadline_factor: f64,
    budget_seconds: f64,
    completed: u64,
    expired: u64,
    deadline_missed: u64,
    miss_rate: f64,
    slack_p50_seconds: f64,
    slack_p99_seconds: f64,
    wall_seconds: f64,
    throughput_jobs_per_second: f64,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    n: usize,
    angles: usize,
    iterations: usize,
    workers: usize,
    est_job_seconds: f64,
    cells: Vec<LoadCell>,
    unloaded_miss_rate: f64,
    /// CI gate: a lone request with a generous deadline never misses.
    unloaded_deadline_miss_rate_zero: bool,
    /// CI gate: the lone request's reconstruction is bit-identical to
    /// `run_memoized`.
    serve_bit_identical: bool,
    /// CI gate: a job cancelled while queued resolves `Cancelled` without
    /// ever executing.
    cancelled_never_ran: bool,
    /// CI gate: a job whose deadline passed while queued resolves `Expired`
    /// without ever executing.
    expired_never_ran: bool,
}

/// One load × deadline-tightness cell: a fresh 2-worker front-end (fresh
/// store, so cells are comparable), `jobs` concurrent requests, each with
/// the same absolute budget.
fn run_cell(config: MlrConfig, workers: usize, jobs: usize, budget_seconds: f64) -> LoadCell {
    let front = ServeFront::new(RuntimeConfig {
        workers,
        queue_capacity: jobs.max(1),
        ..RuntimeConfig::matching(&config)
    });
    let start = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            front
                .submit(
                    ServeRequest::new(format!("load-{i}"), config)
                        .with_deadline(Deadline::within_seconds(budget_seconds)),
                )
                .expect("queue sized for the load")
        })
        .collect();
    for h in handles {
        let _ = h.wait();
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let stats = front.shutdown();
    LoadCell {
        jobs,
        deadline_factor: 0.0, // caller fills in
        budget_seconds,
        completed: stats.completed,
        expired: stats.expired,
        deadline_missed: stats.deadline.missed,
        miss_rate: stats.deadline_miss_rate(),
        slack_p50_seconds: stats.deadline.slack_p50_seconds,
        slack_p99_seconds: stats.deadline.slack_p99_seconds,
        wall_seconds,
        throughput_jobs_per_second: stats.throughput_jobs_per_second(),
    }
}

fn main() {
    header(
        "Figure 21",
        "deadline-aware serving: load × deadline tightness vs miss rate, + cancellation guarantees",
    );
    let smoke = smoke_from_args();
    let (n, angles, iterations) = if smoke { (12, 8, 5) } else { (16, 12, 6) };
    let loads: Vec<usize> = if smoke { vec![2, 4] } else { vec![2, 4, 8] };
    let factors: Vec<f64> = if smoke {
        vec![0.5, 4.0]
    } else {
        vec![0.25, 1.0, 4.0]
    };
    let workers = 2usize;
    let config = MlrConfig::quick(n, angles).with_iterations(iterations);

    // ------------------------------------------------------- calibration
    let calibration_start = Instant::now();
    let (reference, _) = MlrPipeline::new(config).run_memoized();
    let est_job_seconds = calibration_start.elapsed().as_secs_f64().max(1e-3);
    println!(
        "problem: {n}³, {angles} angles, {iterations} ADMM iterations — \
         calibrated single job: {est_job_seconds:.3}s\n"
    );

    // ------------------------------------------------------- load sweep
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>8} {:>7} {:>10} {:>10}",
        "jobs", "factor", "budget", "miss rate", "expired", "done", "p50 slack", "p99 slack"
    );
    let mut cells = Vec::new();
    for &jobs in &loads {
        for &factor in &factors {
            // Budget scaled to the work actually in front of a request: a
            // full wave of the queue ahead of it on `workers` workers.
            let budget_seconds = factor * est_job_seconds * jobs.div_ceil(workers) as f64;
            let mut cell = run_cell(config, workers, jobs, budget_seconds);
            cell.deadline_factor = factor;
            println!(
                "{:>5} {:>8.2} {:>9.2}s {:>9.1}% {:>8} {:>7} {:>+9.2}s {:>+9.2}s",
                cell.jobs,
                cell.deadline_factor,
                cell.budget_seconds,
                100.0 * cell.miss_rate,
                cell.expired,
                cell.completed,
                cell.slack_p50_seconds,
                cell.slack_p99_seconds,
            );
            cells.push(cell);
        }
    }

    // -------------------------------------- gate 1+2: unloaded, identical
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        ..RuntimeConfig::matching(&config)
    });
    let report = front
        .submit(
            ServeRequest::new("unloaded", config)
                .with_deadline(Deadline::within(Duration::from_secs(600))),
        )
        .expect("empty queue admits")
        .wait_report()
        .expect("generous deadline completes");
    let serve_bit_identical = report.reconstruction.as_slice().len()
        == reference.reconstruction.as_slice().len()
        && report
            .reconstruction
            .as_slice()
            .iter()
            .zip(reference.reconstruction.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let unloaded_stats = front.shutdown();
    let unloaded_miss_rate = unloaded_stats.deadline_miss_rate();
    let unloaded_deadline_miss_rate_zero =
        unloaded_miss_rate == 0.0 && unloaded_stats.deadline.met == 1;

    // ------------------------------------- gate 3: cancelled never runs
    let blocker_config = MlrConfig::quick(n, angles).with_iterations(40);
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 4,
        ..RuntimeConfig::matching(&config)
    });
    let blocker = front
        .submit(ServeRequest::new("blocker", blocker_config))
        .expect("empty queue admits");
    spin_until("blocker to start running", Duration::from_secs(60), || {
        blocker.phase() == JobPhase::Running
    });
    let victim = front
        .submit(ServeRequest::new("cancel-victim", config))
        .expect("queue has room");
    victim.cancel();
    let cancelled_never_ran = matches!(
        victim.wait(),
        JobStatus::Cancelled {
            while_running: false,
            ..
        }
    );
    let _ = blocker.wait();
    front.shutdown();

    // --------------------------------------- gate 4: expired never runs
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 4,
        ..RuntimeConfig::matching(&config)
    });
    let blocker = front
        .submit(ServeRequest::new("blocker", blocker_config))
        .expect("empty queue admits");
    let victim = front
        .submit(
            ServeRequest::new("expire-victim", config)
                .with_deadline(Deadline::within(Duration::ZERO)),
        )
        .expect("queue has room");
    let expired_never_ran = matches!(
        victim.wait(),
        JobStatus::Expired {
            while_running: false,
            ..
        }
    );
    let _ = blocker.wait();
    front.shutdown();

    println!();
    compare_row(
        "unloaded deadline-miss rate",
        "0 (required)",
        &format!("{:.1} %", 100.0 * unloaded_miss_rate),
    );
    compare_row(
        "completed serve == run_memoized, bitwise",
        "required",
        if serve_bit_identical {
            "holds"
        } else {
            "VIOLATED"
        },
    );
    compare_row(
        "cancelled-while-queued never runs",
        "required",
        if cancelled_never_ran {
            "holds"
        } else {
            "VIOLATED"
        },
    );
    compare_row(
        "expired-before-pop never runs",
        "required",
        if expired_never_ran {
            "holds"
        } else {
            "VIOLATED"
        },
    );

    assert!(
        unloaded_deadline_miss_rate_zero,
        "a lone generous-deadline request missed: {unloaded_miss_rate}"
    );
    assert!(serve_bit_identical, "the serving layer changed the bits");
    assert!(cancelled_never_ran, "a cancelled queued job executed");
    assert!(expired_never_ran, "an expired queued job executed");

    let record = Record {
        smoke,
        n,
        angles,
        iterations,
        workers,
        est_job_seconds,
        cells,
        unloaded_miss_rate,
        unloaded_deadline_miss_rate_zero,
        serve_bit_identical,
        cancelled_never_ran,
        expired_never_ran,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_serving.json", &json).is_ok() {
                println!("\n[record written to BENCH_serving.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig21_serving", &record);
}
