//! Figure 16: cumulative distribution of memoization-database query latency
//! under contention, for 1–16 GPUs sharing one memory node.
use mlr_bench::{compare_row, header, write_record};
use mlr_cluster::LatencyExperiment;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    gpus: usize,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    fraction_over_100ms: f64,
}

fn main() {
    header(
        "Figure 16",
        "memoization-query latency CDF under contention (one memory node)",
    );
    let experiment = LatencyExperiment::default();
    let mut rows = Vec::new();
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>18}",
        "GPUs", "p50 (µs)", "p90 (µs)", "p99 (µs)", "> 100 ms"
    );
    for &g in &[1usize, 2, 4, 8, 16] {
        let cdf = experiment.cdf(g);
        let row = Row {
            gpus: g,
            p50_us: cdf.quantile(0.50) * 1e6,
            p90_us: cdf.quantile(0.90) * 1e6,
            p99_us: cdf.quantile(0.99) * 1e6,
            fraction_over_100ms: experiment.fraction_slower_than(g, 0.1),
        };
        println!(
            "{:>5} {:>12.0} {:>12.0} {:>12.0} {:>17.1}%",
            row.gpus,
            row.p50_us,
            row.p90_us,
            row.p99_us,
            100.0 * row.fraction_over_100ms
        );
        rows.push(row);
    }
    println!();
    compare_row(
        "queries > 100 ms at 16 GPUs",
        "43 %",
        &mlr_bench::pct(rows.last().unwrap().fraction_over_100ms),
    );
    compare_row(
        "distribution shifts right with more GPUs",
        "yes",
        "yes (see table)",
    );
    write_record("fig16_latency_cdf", &rows);
}
