//! Figure 17: ADMM convergence loss with and without memoization.
use mlr_bench::{compare_row, header, scale_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    exact_loss: Vec<(usize, f64)>,
    memo_loss: Vec<(usize, f64)>,
    final_ratio: f64,
    accuracy: f64,
}

fn main() {
    header(
        "Figure 17",
        "convergence loss with and without memoization (τ = 0.92)",
    );
    let scale = scale_from_args();
    let n = scale.volume_size();
    let iterations = if scale == Scale::Tiny { 12 } else { 30 };
    let pipeline = MlrPipeline::new(MlrConfig::quick(n, n / 2).with_iterations(iterations));
    let report = pipeline.run_comparison();

    println!(
        "{:>10} {:>18} {:>18}",
        "iteration", "loss (exact)", "loss (memoized)"
    );
    for (a, b) in report.exact_loss.iter().zip(&report.memo_loss) {
        if a.0 % 3 == 0 || a.0 + 1 == iterations {
            println!("{:>10} {:>18.4e} {:>18.4e}", a.0, a.1, b.1);
        }
    }
    let final_ratio = report.memo_loss.last().unwrap().1 / report.exact_loss.last().unwrap().1;
    println!();
    compare_row(
        "loss curves with/without memoization",
        "nearly identical",
        &format!("final-loss ratio {final_ratio:.3}"),
    );
    compare_row(
        "extra iterations needed with memoization",
        "none",
        if final_ratio < 1.2 { "none" } else { "some" },
    );
    compare_row(
        "reconstruction accuracy vs exact",
        ">= 0.94 at τ = 0.92",
        &format!("{:.3}", report.accuracy),
    );
    write_record(
        "fig17_convergence",
        &Record {
            exact_loss: report.exact_loss,
            memo_loss: report.memo_loss,
            final_ratio,
            accuracy: report.accuracy,
        },
    );
}
