//! Figure 4: number of similar chunks across ADMM iterations at three chunk
//! locations (top / middle / bottom), τ = 0.93.
use mlr_bench::{compare_row, header, scale_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    locations: Vec<usize>,
    series: Vec<Vec<(usize, usize)>>,
    fraction_with_similar: f64,
}

fn main() {
    header(
        "Figure 4",
        "similar chunks across iterations at three chunk locations (τ = 0.93)",
    );
    let scale = scale_from_args();
    let n = scale.volume_size();
    let iterations = if scale == Scale::Tiny { 12 } else { 30 };
    let mut config = MlrConfig::quick(n, n / 2)
        .with_tau(0.93)
        .with_iterations(iterations);
    config.memo.track_similarity = true;
    config.memo.warmup_iterations = 0;
    let pipeline = MlrPipeline::new(config);
    let (_, executor) = pipeline.run_memoized();

    let num_locations = pipeline.operator().fu2d_grid().num_chunks();
    let locations = vec![0, num_locations / 2, num_locations - 1];
    let mut series = Vec::new();
    println!(
        "{:<12} {:<10} similar prior chunks",
        "location", "iteration"
    );
    for &loc in &locations {
        let s = executor.similarity_series(loc);
        for &(it, count) in s
            .iter()
            .filter(|(it, _)| it % 5 == 0 || *it + 1 == iterations)
        {
            println!("{:<12} {:<10} {}", loc, it, count);
        }
        series.push(s);
    }
    let fraction = executor.similarity_fraction();
    println!();
    compare_row(
        "iterations with >=1 similar prior chunk",
        "~70 %",
        &mlr_bench::pct(fraction),
    );
    compare_row(
        "similar chunks grow as ADMM converges",
        "yes (4-9 after 30 iters)",
        &format!(
            "last-iteration counts {:?}",
            series
                .iter()
                .map(|s| s.last().map(|p| p.1).unwrap_or(0))
                .collect::<Vec<_>>()
        ),
    );
    write_record(
        "fig04_chunk_similarity",
        &Record {
            locations,
            series,
            fraction_with_similar: fraction,
        },
    );
}
