//! Figure 11: communication + similarity-search time per chunk with and
//! without key coalescing.
use mlr_bench::{compare_row, header, write_record};
use mlr_sim::workload::ProblemSize;
use mlr_sim::CostModel;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    without_coalesce_seconds: f64,
    with_coalesce_seconds: f64,
    improvement: f64,
}

fn main() {
    header(
        "Figure 11",
        "key coalescing: per-chunk communication and similarity-search time (1K^3)",
    );
    let size = ProblemSize::paper_1k();
    let cost = CostModel::polaris(1);
    let key_bytes: f64 = 60.0 * 8.0; // 60-dimensional f64 key
    let keys_per_batch = (4096.0 / key_bytes).ceil() as usize;
    let db_size = 1_000_000;

    // Without coalescing: one message and one single-key search per query.
    let without = cost.network_message_time(key_bytes) + cost.ann_query_time(db_size, 60, 1, 8);
    // With coalescing: a 4 KB batch amortised over its keys, plus a batched
    // (multi-threaded) index lookup.
    let with = (cost.network_message_time(4096.0)
        + cost.ann_query_time(db_size, 60, keys_per_batch, 8))
        / keys_per_batch as f64;
    let improvement = 1.0 - with / without;

    println!("queries per 4 KB batch: {keys_per_batch}");
    println!(
        "per-query cost w/o coalescing: {}",
        mlr_bench::fmt_secs(without)
    );
    println!(
        "per-query cost w/  coalescing: {}",
        mlr_bench::fmt_secs(with)
    );
    compare_row(
        "improvement from key coalescing",
        "~25 %",
        &mlr_bench::pct(improvement),
    );
    let _ = size;
    write_record(
        "fig11_key_coalesce",
        &Record {
            without_coalesce_seconds: without,
            with_coalesce_seconds: with,
            improvement,
        },
    );
}
