//! Figure 15: interconnect bandwidth utilisation towards the memory node as
//! the number of GPUs grows.
use mlr_bench::{compare_row, header, write_record};
use mlr_cluster::LatencyExperiment;

fn main() {
    header(
        "Figure 15",
        "memory-node interconnect utilisation vs number of GPUs",
    );
    let experiment = LatencyExperiment::default();
    let counts = [1usize, 2, 4, 6, 8, 12, 16];
    let mut rows = Vec::new();
    println!("{:>5} {:>14}", "GPUs", "utilisation");
    for &g in &counts {
        let u = experiment.utilisation(g);
        println!("{:>5} {:>13.1}%", g, 100.0 * u);
        rows.push((g, u));
    }
    println!();
    compare_row(
        "utilisation near peak at >= 12 GPUs (3 nodes)",
        "yes",
        &format!("{:.0} % at 12 GPUs", 100.0 * experiment.utilisation(12)),
    );
    write_record("fig15_bandwidth", &rows);
}
