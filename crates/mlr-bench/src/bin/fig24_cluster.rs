//! Figure 24 (Figures 14–16 over the distributed memo tier): trace replay
//! of a real multi-job run through the simulated memory-node cluster.
//!
//! Two phases:
//!
//! * **hit parity** — the same deterministic query-or-insert schedule is
//!   driven through a plain `ShardedMemoDb` and through `DistributedMemoDb`
//!   wrappers at several node counts; the hit sequences must be
//!   bit-identical (the distributed tier adds modeled latency and per-node
//!   accounting, never semantics). Gated in CI as `hit_parity`.
//! * **trace replay** — a telemetry-enabled multi-job run records its store
//!   `AccessTrace`; the trace exports to JSON, comes back through
//!   `mlr_telemetry::parse_access_records` (`trace_roundtrip`, gated), and
//!   replays through `mlr_cluster::replay_trace` over the stripe placement
//!   of the run's own distributed store. The replay reproduces the Figure
//!   15-style per-node utilisation (`nodes_spread`: ≥ 2 active nodes,
//!   gated) and the Figure 16-style query-latency CDF (`cdf_monotone`,
//!   gated), with every remote probe charged strictly more than a
//!   replica-served local hit (`remote_exceeds_local`, gated).
//!
//! The machine-readable record lands in `BENCH_cluster.json` (and under
//! `target/experiments/`).

use mlr_bench::{compare_row, header, pct, smoke_from_args, write_record};
use mlr_cluster::{replay_trace, NodeUtilisation, ReplayConfig};
use mlr_core::MlrConfig;
use mlr_math::stats::Ecdf;
use mlr_math::Complex64;
use mlr_memo::{
    DistributedMemoDb, EncoderConfig, MemoDbConfig, MemoStore, NodeTopology, Provenance,
    QueryOutcome, ShardedMemoDb,
};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use mlr_sim::hardware::InterconnectSpec;
use mlr_telemetry::parse_access_records;
use serde::Serialize;
use std::sync::Arc;

use mlr_lamino::FftOpKind;

#[derive(Serialize)]
struct Record {
    smoke: bool,
    nodes: usize,
    shards: usize,
    jobs: usize,
    /// Store accesses recorded by the multi-job run and replayed.
    trace_len: usize,
    /// Replayed queries (hits + misses) behind the latency CDF.
    replayed_queries: usize,
    /// CI gate: distributed-store hit sequence is bit-identical to the
    /// plain sharded store at every probed node count.
    hit_parity: bool,
    /// CI gate: the recorded trace exports to JSON and parses back as the
    /// identical record stream.
    trace_roundtrip: bool,
    /// CI gate: replayed traffic reaches at least two memory nodes.
    nodes_spread: bool,
    /// CI gate: the replayed query-latency CDF is monotone non-decreasing.
    cdf_monotone: bool,
    /// CI gate: every remote (link-charged) query costs strictly more than
    /// a replica-served local hit.
    remote_exceeds_local: bool,
    /// Per-node link accounting of the replay (Figure 15 analogue).
    per_node: Vec<NodeUtilisation>,
    /// Replayed query-latency quantiles, microseconds (Figure 16 analogue).
    latency_us_p50: f64,
    latency_us_p90: f64,
    latency_us_p99: f64,
    /// Replica-set effect during the replay.
    local_hits: u64,
    remote_hits: u64,
    promotions: u64,
    /// Live distributed-store counters from the run itself (not the
    /// replay): per-node utilisation spread and local-hit fraction.
    live_active_nodes: usize,
    live_local_hit_fraction: f64,
}

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 8,
        learning_rate: 1e-3,
    }
}

fn sharded(shards: usize) -> Arc<ShardedMemoDb> {
    Arc::new(ShardedMemoDb::with_shards(
        MemoDbConfig {
            tau: 0.9,
            ..Default::default()
        },
        encoder(),
        1,
        shards,
    ))
}

fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex64::new(scale * (4.0 * t + phase).sin(), scale * (2.0 * t).cos())
        })
        .collect()
}

/// Drives a deterministic query-or-insert schedule and returns the hit/miss
/// sequence — the observable store behaviour the parity gate compares.
fn run_schedule(store: &dyn MemoStore, rounds: usize, locations: usize) -> Vec<bool> {
    let mut outcomes = Vec::new();
    for round in 0..rounds {
        store.advance_epoch();
        for loc in 0..locations {
            let input = chunk(1.0 + loc as f64, 0.2 * loc as f64, 64);
            let key = store.encode(&input);
            let origin = Provenance::solo(round + 1);
            match store.query_with_key(FftOpKind::Fu2D, loc, &input, key, origin) {
                QueryOutcome::Hit { .. } => outcomes.push(true),
                QueryOutcome::Miss { key } => {
                    outcomes.push(false);
                    store.insert(
                        FftOpKind::Fu2D,
                        loc,
                        &input,
                        key,
                        chunk(2.0, 0.3, 16),
                        origin,
                        1e-3,
                    );
                }
            }
        }
    }
    outcomes
}

fn main() {
    header(
        "Figure 24",
        "distributed memo tier: hit parity + trace replay over simulated memory nodes",
    );
    let smoke = smoke_from_args();
    let (jobs, iterations, grid) = if smoke { (4, 3, 12) } else { (6, 4, 16) };
    let nodes = 4usize;
    let shards = 16usize;
    println!(
        "{nodes} memory nodes over {shards} stripes; {jobs} jobs x {iterations} ADMM iterations\n"
    );

    // Phase A: the bit-identity contract. Same schedule, plain vs
    // distributed at several node counts — identical hit sequences.
    let reference = run_schedule(sharded(shards).as_ref(), 5, 10);
    let hit_parity = [1usize, 2, 4, 8].iter().all(|&n| {
        let distributed = DistributedMemoDb::new(sharded(shards), NodeTopology::with_nodes(n));
        run_schedule(&distributed, 5, 10) == reference
    });
    compare_row(
        "hit parity vs ShardedMemoDb (1/2/4/8 nodes)",
        "bit-identical",
        if hit_parity {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    );

    // Phase B: record a real multi-job run's access trace over a
    // topology-configured runtime...
    let config = MlrConfig::quick(grid, 8).with_iterations(iterations);
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: jobs.max(4),
        telemetry: true,
        access_trace: Some(1 << 16),
        topology: Some(NodeTopology::with_nodes(nodes)),
        ..RuntimeConfig::matching(&config)
    });
    for i in 0..jobs {
        rt.submit(ReconJob::new(format!("tenant-{i}"), config))
            .expect("queue has room")
            .wait_report()
            .expect("job completes");
    }
    let snapshot = rt.telemetry().snapshot().expect("telemetry enabled");
    let placement = rt
        .distributed()
        .expect("runtime was configured with a topology")
        .placement()
        .to_vec();
    let live = rt
        .distributed()
        .expect("runtime was configured with a topology")
        .distributed_stats();
    rt.shutdown();

    // ...export it to JSON and read it back through the replay reader.
    let parsed = parse_access_records(&snapshot.to_json());
    let trace_roundtrip = parsed.as_deref() == Ok(&snapshot.accesses[..]);
    let records = parsed.unwrap_or_default();
    compare_row(
        "access trace JSON round-trip",
        "identical stream",
        if trace_roundtrip {
            "identical"
        } else {
            "DIVERGED"
        },
    );

    // ...and replay it through the shared-link contention model over the
    // run's own stripe placement.
    let replay_config = ReplayConfig::new(InterconnectSpec::slingshot11());
    let outcome = replay_trace(&records, &placement, &replay_config);
    let nodes_spread = outcome.active_nodes() >= 2;
    let ecdf = Ecdf::new(&outcome.query_latencies);
    let curve = ecdf.curve();
    let cdf_monotone = !curve.is_empty()
        && curve
            .windows(2)
            .all(|w| w[1].0 >= w[0].0 && w[1].1 >= w[0].1)
        && curve.last().map(|&(_, f)| f) == Some(1.0);
    // Local replica hits replay at exactly `local_latency`; everything else
    // crossed a link and must have paid at least its base latency.
    let local = replay_config.local_latency;
    let min_remote = outcome
        .query_latencies
        .iter()
        .copied()
        .filter(|&l| (l - local).abs() > 1e-15)
        .fold(f64::INFINITY, f64::min);
    let remote_exceeds_local =
        outcome.local_hits > 0 && outcome.remote_hits > 0 && min_remote > local;

    let p = |q: f64| ecdf.quantile(q) * 1e6;
    let (p50, p90, p99) = (p(0.50), p(0.90), p(0.99));
    compare_row(
        "active memory nodes",
        ">= 2 of 4",
        &format!("{} of {}", outcome.active_nodes(), nodes),
    );
    compare_row(
        "replayed query latency p50/p90/p99",
        "(informational)",
        &format!("{p50:.2} / {p90:.2} / {p99:.2} us"),
    );
    compare_row(
        "remote vs local-replica cost",
        "remote strictly above",
        if remote_exceeds_local {
            "strictly above"
        } else {
            "NOT ABOVE"
        },
    );
    println!("\nper-node link utilisation over the replay horizon:");
    for n in &outcome.per_node {
        println!(
            "  node {}: {:>2} stripes, {:>5} msgs, {:>9.0} B, busy {:>7.1} us, util {}",
            n.node,
            n.stripes,
            n.messages,
            n.bytes,
            n.busy_seconds * 1e6,
            pct(n.utilisation),
        );
    }
    println!(
        "replica set: {} local / {} remote hits, {} promotions (live run: {} active nodes, {} local-hit share)",
        outcome.local_hits,
        outcome.remote_hits,
        outcome.promotions,
        live.active_nodes(),
        pct(live.local_hit_fraction()),
    );

    assert!(hit_parity, "distributed store diverged from ShardedMemoDb");
    assert!(trace_roundtrip, "access trace failed to round-trip");
    assert!(nodes_spread, "replayed traffic never left one node");
    assert!(cdf_monotone, "query-latency CDF is not monotone");
    assert!(
        remote_exceeds_local,
        "remote probes must cost strictly more than local replica hits \
         (local {local:.2e} s, min remote {min_remote:.2e} s, {} local / {} remote)",
        outcome.local_hits, outcome.remote_hits
    );

    let record = Record {
        smoke,
        nodes,
        shards,
        jobs,
        trace_len: records.len(),
        replayed_queries: outcome.query_latencies.len(),
        hit_parity,
        trace_roundtrip,
        nodes_spread,
        cdf_monotone,
        remote_exceeds_local,
        per_node: outcome.per_node.clone(),
        latency_us_p50: p50,
        latency_us_p90: p90,
        latency_us_p99: p99,
        local_hits: outcome.local_hits,
        remote_hits: outcome.remote_hits,
        promotions: outcome.promotions,
        live_active_nodes: live.active_nodes(),
        live_local_hit_fraction: live.local_hit_fraction(),
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_cluster.json", &json).is_ok() {
                println!("\n[record written to BENCH_cluster.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig24_cluster", &record);
}
