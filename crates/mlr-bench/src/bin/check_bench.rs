//! The CI bench-regression gate.
//!
//! Compares the `BENCH_*.json` records produced by a smoke run of
//! `fig18_multi_job` / `fig19_eviction` against the committed baseline in
//! `ci/bench_baseline.json`, with a tolerance band per metric. A cross-job
//! hit rate (or any other gated metric) dropping below
//! `baseline - tolerance` fails the process with exit code 1, which fails
//! the `bench-smoke` CI job; improvements beyond the band are reported as a
//! hint to refresh the baseline but do not fail.
//!
//! Baseline format (parsed with the crate's own minimal JSON reader — the
//! vendored `serde_json` shim only serialises):
//!
//! ```json
//! {
//!   "tolerance": 0.1,
//!   "checks": [
//!     { "file": "BENCH_eviction.json",
//!       "path": "cost_aware_half_cross_job_hit_rate",
//!       "baseline": 0.09 },
//!     { "file": "BENCH_eviction.json",
//!       "path": "all_cells_bounded", "equals": true }
//!   ]
//! }
//! ```
//!
//! `baseline` checks are numeric with an optional per-check `tolerance`
//! overriding the global one; `equals` checks demand an exact boolean.
//!
//! Usage: `check_bench [--baseline ci/bench_baseline.json] [--dir .]`

use mlr_bench::arg_value;
use mlr_bench::json::JsonValue;
use std::path::Path;
use std::process::ExitCode;

struct Outcome {
    file: String,
    path: String,
    detail: String,
    failed: bool,
}

fn run(baseline_path: &str, dir: &str) -> Result<Vec<Outcome>, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline =
        JsonValue::parse(&text).map_err(|e| format!("bad baseline {baseline_path}: {e}"))?;
    let global_tolerance = baseline
        .get("tolerance")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.1);
    let checks = baseline
        .get("checks")
        .and_then(JsonValue::as_array)
        .ok_or("baseline has no checks array")?;

    let mut outcomes = Vec::new();
    // Parse each record file once.
    let mut records: Vec<(String, Result<JsonValue, String>)> = Vec::new();
    for check in checks {
        let file = check
            .get("file")
            .and_then(JsonValue::as_str)
            .ok_or("check without file")?
            .to_string();
        if !records.iter().any(|(f, _)| *f == file) {
            let full = Path::new(dir).join(&file);
            let parsed = std::fs::read_to_string(&full)
                .map_err(|e| format!("cannot read {}: {e}", full.display()))
                .and_then(|t| {
                    JsonValue::parse(&t).map_err(|e| format!("bad json {}: {e}", full.display()))
                });
            records.push((file.clone(), parsed));
        }
    }

    for check in checks {
        let file = check.get("file").and_then(JsonValue::as_str).unwrap_or("");
        let path = check
            .get("path")
            .and_then(JsonValue::as_str)
            .ok_or("check without path")?;
        let record = match &records.iter().find(|(f, _)| f == file).unwrap().1 {
            Ok(v) => v,
            Err(e) => {
                outcomes.push(Outcome {
                    file: file.to_string(),
                    path: path.to_string(),
                    detail: e.clone(),
                    failed: true,
                });
                continue;
            }
        };
        let Some(value) = record.get(path) else {
            outcomes.push(Outcome {
                file: file.to_string(),
                path: path.to_string(),
                detail: "metric missing from record".to_string(),
                failed: true,
            });
            continue;
        };
        let outcome = if let Some(expected) = check.get("equals").and_then(JsonValue::as_bool) {
            match value.as_bool() {
                Some(actual) if actual == expected => Outcome {
                    file: file.to_string(),
                    path: path.to_string(),
                    detail: format!("= {actual} (required)"),
                    failed: false,
                },
                other => Outcome {
                    file: file.to_string(),
                    path: path.to_string(),
                    detail: format!("expected {expected}, got {other:?}"),
                    failed: true,
                },
            }
        } else {
            let target = check
                .get("baseline")
                .and_then(JsonValue::as_f64)
                .ok_or("numeric check without baseline value")?;
            let tolerance = check
                .get("tolerance")
                .and_then(JsonValue::as_f64)
                .unwrap_or(global_tolerance);
            match value.as_f64() {
                None => Outcome {
                    file: file.to_string(),
                    path: path.to_string(),
                    detail: "metric is not numeric".to_string(),
                    failed: true,
                },
                Some(actual) if actual < target - tolerance => Outcome {
                    file: file.to_string(),
                    path: path.to_string(),
                    detail: format!(
                        "REGRESSION: {actual:.4} < baseline {target:.4} - tolerance {tolerance:.4}"
                    ),
                    failed: true,
                },
                Some(actual) if actual > target + tolerance => Outcome {
                    file: file.to_string(),
                    path: path.to_string(),
                    detail: format!(
                        "{actual:.4} beats baseline {target:.4} by more than {tolerance:.4} — \
                         consider refreshing ci/bench_baseline.json"
                    ),
                    failed: false,
                },
                Some(actual) => Outcome {
                    file: file.to_string(),
                    path: path.to_string(),
                    detail: format!("{actual:.4} within {target:.4} ± {tolerance:.4}"),
                    failed: false,
                },
            }
        };
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

fn main() -> ExitCode {
    let baseline = arg_value("--baseline").unwrap_or_else(|| "ci/bench_baseline.json".to_string());
    let dir = arg_value("--dir").unwrap_or_else(|| ".".to_string());
    println!("bench regression gate: baseline {baseline}, records in {dir}");
    match run(&baseline, &dir) {
        Err(e) => {
            eprintln!("check_bench: {e}");
            ExitCode::FAILURE
        }
        Ok(outcomes) => {
            let mut failed = 0usize;
            for o in &outcomes {
                let flag = if o.failed { "FAIL" } else { " ok " };
                println!("[{flag}] {}:{} — {}", o.file, o.path, o.detail);
                failed += o.failed as usize;
            }
            if failed > 0 {
                eprintln!("{failed} bench metric(s) regressed beyond tolerance");
                ExitCode::FAILURE
            } else {
                println!("all {} bench metrics within tolerance", outcomes.len());
                ExitCode::SUCCESS
            }
        }
    }
}
