//! Figure 19 (beyond the paper): capacity-governed memoization — budget vs
//! cross-job hit rate under pluggable eviction policies.
//!
//! The paper's evaluation is dominated by memory breakdowns because the
//! memoization database competes with the reconstruction working sets for
//! DRAM; a store that grows without bound is not deployable. This harness
//! measures what bounding it costs: the replicated-jobs beamline workload
//! (two sample families reconstructed repeatedly, interleaved A B A B … the
//! way replicated runs and parameter rechecks arrive) is replayed over one
//! shared store under byte budgets at fractions of the unbounded footprint,
//! once per eviction policy (FIFO, LRU, TTL, cost-aware), and the cross-job
//! hit rate that survives each budget is recorded.
//!
//! Invariants checked here (and gated in CI through `check_bench`):
//! * resident bytes stay ≤ budget after every insert (post-enforcement
//!   high-water mark never exceeds the cap);
//! * at the 50 % budget, the cost-aware policy retains a strictly higher
//!   cross-job hit rate than naive FIFO and LRU;
//! * eviction is deterministic: the same budget + schedule reproduces the
//!   reconstructions bit-identically, and a bounded single job equals
//!   `run_memoized` with the same bounded configuration.
//!
//! The machine-readable record lands in `BENCH_eviction.json` (and, like
//! every harness, under `target/experiments/`).

use mlr_bench::{compare_row, header, pct, scale_from_args, smoke_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, Scale};
use mlr_memo::{CapacityBudget, EvictionPolicyKind, MemoStore, ShardedMemoDb};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct SideRecord {
    hit_rate: f64,
    cross_job_hit_rate: f64,
    entries: usize,
    resident_bytes: u64,
}

#[derive(Serialize)]
struct CellRecord {
    policy: String,
    budget_fraction: f64,
    budget_bytes: u64,
    hit_rate: f64,
    cross_job_hit_rate: f64,
    hit_rate_under_pressure: f64,
    evictions: u64,
    expirations: u64,
    entries: usize,
    resident_bytes: u64,
    peak_resident_bytes: u64,
    /// Post-enforcement footprint never exceeded the cap.
    bounded: bool,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    jobs: usize,
    iterations: usize,
    shards: usize,
    unbounded: SideRecord,
    cells: Vec<CellRecord>,
    /// Convenience extracts for the CI regression gate.
    cost_aware_half_cross_job_hit_rate: f64,
    fifo_half_cross_job_hit_rate: f64,
    lru_half_cross_job_hit_rate: f64,
    all_cells_bounded: bool,
    deterministic_replay: bool,
    single_job_bit_identical: bool,
}

/// Replays the job schedule sequentially over one shared store (job ids
/// 1..=len, so cross-job accounting applies) and returns every
/// reconstruction. Sequential replay pins the schedule, which is what makes
/// the determinism checks exact.
fn replay(schedule: &[&MlrPipeline], store: &Arc<ShardedMemoDb>) -> Vec<Vec<f64>> {
    schedule
        .iter()
        .enumerate()
        .map(|(i, pipeline)| {
            let shared: Arc<dyn MemoStore> = Arc::clone(store) as Arc<dyn MemoStore>;
            let (result, _executor) = pipeline.run_memoized_with_store(shared, i as u64 + 1);
            result.reconstruction.as_slice().to_vec()
        })
        .collect()
}

fn bits_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len() && ra.iter().zip(rb).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

fn main() {
    header(
        "Figure 19",
        "capacity-governed memo store: budget vs cross-job hit rate by eviction policy",
    );
    let scale = scale_from_args();
    let smoke = smoke_from_args();
    let n = if smoke || scale == Scale::Tiny {
        12
    } else {
        16
    };
    // Replicated rechecks are short re-runs: 5 outer iterations per job.
    // (Longer jobs shift the balance toward intra-job drift, where pure
    // recency is already near-optimal and the policies converge.)
    let iterations = 5;
    let jobs = if smoke { 5 } else { 6 };
    let shards = 16usize;

    // The replicated-jobs beamline workload: two sample families, each
    // reconstructed repeatedly, *interleaved* (A B A B …) the way replicated
    // runs and parameter rechecks arrive in practice. Every family's reuse
    // period therefore spans an intervening job — exactly the pattern that
    // separates recency policies (which evict family A's proven-reusable
    // entries while family B runs) from the provenance-aware cost policy.
    let config = MlrConfig::quick(n, n / 2).with_iterations(iterations);
    let mut config_b = config;
    config_b.problem.seed = 1303;
    let pipeline = MlrPipeline::new(config);
    let pipeline_b = MlrPipeline::new(config_b);
    let schedule: Vec<&MlrPipeline> = (0..jobs)
        .map(|i| if i % 2 == 0 { &pipeline } else { &pipeline_b })
        .collect();

    // ------------------------------------------------- unbounded baseline
    let unbounded_store = pipeline.build_shared_store(shards);
    let _ = replay(&schedule, &unbounded_store);
    let ustats = unbounded_store.stats();
    let footprint = ustats.resident_bytes;
    let unbounded = SideRecord {
        hit_rate: ustats.hit_rate(),
        cross_job_hit_rate: ustats.cross_job_hit_rate(),
        entries: ustats.entries,
        resident_bytes: footprint,
    };
    println!(
        "unbounded footprint: {} bytes, {} entries, hit rate {}, cross-job {}\n",
        footprint,
        ustats.entries,
        pct(unbounded.hit_rate),
        pct(unbounded.cross_job_hit_rate),
    );

    // ---------------------------------------------------------- the sweep
    let fractions: &[f64] = if smoke { &[0.5] } else { &[0.25, 0.5, 0.75] };
    let ttl = EvictionPolicyKind::Ttl {
        ttl_epochs: iterations as u64 + 2,
    };
    let policies: &[(&str, EvictionPolicyKind)] = &[
        ("fifo", EvictionPolicyKind::Fifo),
        ("lru", EvictionPolicyKind::Lru),
        ("ttl", ttl),
        ("cost-aware", EvictionPolicyKind::CostAware),
    ];

    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "policy", "budget", "bytes", "hit rate", "cross-job", "pressure", "evicted", "bounded"
    );
    let mut cells: Vec<CellRecord> = Vec::new();
    for &fraction in fractions {
        let budget_bytes = (fraction * footprint as f64) as u64;
        for (name, policy) in policies {
            let store = pipeline.build_shared_store_with(
                shards,
                CapacityBudget::bytes(budget_bytes),
                *policy,
            );
            let _ = replay(&schedule, &store);
            let stats = store.stats();
            let bounded = stats.peak_resident_bytes <= budget_bytes;
            println!(
                "{:<12} {:>7.0}% {:>12} {:>10} {:>12} {:>10} {:>10} {:>8}",
                name,
                100.0 * fraction,
                budget_bytes,
                pct(stats.hit_rate()),
                pct(stats.cross_job_hit_rate()),
                pct(stats.hit_rate_under_pressure()),
                stats.evictions,
                bounded,
            );
            cells.push(CellRecord {
                policy: name.to_string(),
                budget_fraction: fraction,
                budget_bytes,
                hit_rate: stats.hit_rate(),
                cross_job_hit_rate: stats.cross_job_hit_rate(),
                hit_rate_under_pressure: stats.hit_rate_under_pressure(),
                evictions: stats.evictions,
                expirations: stats.expirations,
                entries: stats.entries,
                resident_bytes: stats.resident_bytes,
                peak_resident_bytes: stats.peak_resident_bytes,
                bounded,
            });
        }
    }

    let cell = |policy: &str, fraction: f64| -> &CellRecord {
        cells
            .iter()
            .find(|c| c.policy == policy && (c.budget_fraction - fraction).abs() < 1e-9)
            .expect("sweep covers the 50% budget")
    };
    let cost_aware_half = cell("cost-aware", 0.5).cross_job_hit_rate;
    let fifo_half = cell("fifo", 0.5).cross_job_hit_rate;
    let lru_half = cell("lru", 0.5).cross_job_hit_rate;
    let all_bounded = cells.iter().all(|c| c.bounded);

    // --------------------------------------------- determinism invariants
    // Same budget + same schedule ⇒ bit-identical reconstructions.
    let half_budget = CapacityBudget::bytes((0.5 * footprint as f64) as u64);
    let store_a =
        pipeline.build_shared_store_with(shards, half_budget, EvictionPolicyKind::CostAware);
    let store_b =
        pipeline.build_shared_store_with(shards, half_budget, EvictionPolicyKind::CostAware);
    let recon_a = replay(&schedule, &store_a);
    let recon_b = replay(&schedule, &store_b);
    let deterministic_replay = bits_equal(&recon_a, &recon_b);

    // One bounded job over the sharded store == `run_memoized` with the same
    // bounded configuration (private database): eviction is shard-layout
    // independent.
    let bounded_config = config.with_memo_budget(half_budget, EvictionPolicyKind::CostAware);
    let bounded_pipeline = MlrPipeline::new(bounded_config);
    let (private, _) = bounded_pipeline.run_memoized();
    let single_store = bounded_pipeline.build_shared_store(shards);
    let single = replay(&[&bounded_pipeline], &single_store);
    let single_job_bit_identical =
        bits_equal(&[private.reconstruction.as_slice().to_vec()], &single[..1]);

    println!();
    compare_row(
        "resident ≤ budget after every insert",
        "always",
        if all_bounded { "holds" } else { "VIOLATED" },
    );
    compare_row(
        "cost-aware > fifo/lru cross-job @ 50% budget",
        "strictly",
        &format!(
            "{} vs {} / {}",
            pct(cost_aware_half),
            pct(fifo_half),
            pct(lru_half)
        ),
    );
    compare_row(
        "deterministic replay (same budget+schedule)",
        "bit-identical",
        if deterministic_replay {
            "holds"
        } else {
            "VIOLATED"
        },
    );
    compare_row(
        "bounded single job == run_memoized",
        "bit-identical",
        if single_job_bit_identical {
            "holds"
        } else {
            "VIOLATED"
        },
    );

    assert!(all_bounded, "a policy let the footprint exceed its budget");
    assert!(
        cost_aware_half > fifo_half && cost_aware_half > lru_half,
        "cost-aware must strictly beat naive policies at the 50% budget \
         (cost-aware {cost_aware_half}, fifo {fifo_half}, lru {lru_half})"
    );
    assert!(deterministic_replay, "replay diverged under eviction");
    assert!(
        single_job_bit_identical,
        "bounded single job diverged from run_memoized"
    );

    let record = Record {
        smoke,
        jobs,
        iterations,
        shards,
        unbounded,
        cells,
        cost_aware_half_cross_job_hit_rate: cost_aware_half,
        fifo_half_cross_job_hit_rate: fifo_half,
        lru_half_cross_job_hit_rate: lru_half,
        all_cells_bounded: all_bounded,
        deterministic_replay,
        single_job_bit_identical,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_eviction.json", &json).is_ok() {
                println!("\n[record written to BENCH_eviction.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig19_eviction", &record);
}
