//! Figure 23 (beyond the paper): telemetry is zero-cost when disabled and
//! cheap when enabled.
//!
//! The observability stack instruments the hottest loop in the system — the
//! per-chunk memo-hit path — so its own cost must be provable:
//!
//! * **disabled overhead** — the same steady cache-hit workload is driven
//!   through two executors, one with `Telemetry::disabled()` (the default)
//!   and one with `Telemetry::enabled()`, in interleaved repetitions; the
//!   per-mode minimum ns/chunk is compared. The disabled recorder is an
//!   inlined null check and the hot loop hoists even that to one branch per
//!   batch, so the enabled/disabled ratio must stay within 5 %
//!   (`overhead_within_bound`, gated in CI);
//! * **enabled allocation envelope** — the counting global allocator
//!   certifies that a steady hit chunk with telemetry *enabled* still
//!   performs at most the fig22 envelope (≤ 4 allocations, ≤ 1 KiB):
//!   counters fold into sharded atomics, stage samples into fixed-bucket
//!   histograms and spans into a preallocated ring, none of which allocate
//!   (`enabled_hit_allocation_free`, gated in CI);
//! * **export round-trip** — the JSON snapshot and the Chrome trace-event
//!   document are generated and re-read through `mlr_bench::json`'s parser,
//!   proving the hand-rolled serialisers emit well-formed documents with
//!   the expected counters in place (`export_roundtrip`, gated in CI).
//!
//! The machine-readable record lands in `BENCH_observability.json` (and
//! under `target/experiments/`).

use mlr_bench::alloc::{delta, snapshot, CountingAllocator};
use mlr_bench::json::JsonValue;
use mlr_bench::{compare_row, header, pct, smoke_from_args, write_record};
use mlr_fft::fft::{Direction, FftPlan};
use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use mlr_memo::{EncoderConfig, MemoConfig, MemoizedExecutor};
use mlr_telemetry::Telemetry;
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Record {
    smoke: bool,
    chunk_elems: usize,
    locations: usize,
    steady_iterations: usize,
    repetitions: usize,
    /// Best (minimum over repetitions) steady hit ns/chunk, telemetry off.
    disabled_ns_per_chunk: f64,
    /// Best steady hit ns/chunk, telemetry on (counters + stage timers +
    /// spans all recording).
    enabled_ns_per_chunk: f64,
    /// enabled / disabled − 1 over the per-mode minima.
    overhead_fraction: f64,
    /// CI gate: the overhead stays within 5 %.
    overhead_within_bound: bool,
    /// Allocations per steady hit chunk with telemetry enabled.
    enabled_allocs_per_chunk: f64,
    enabled_alloc_bytes_per_chunk: f64,
    /// CI gate: the instrumented hit path keeps the fig22 allocation
    /// envelope (≤ 4 allocs, ≤ 1024 B per chunk).
    enabled_hit_allocation_free: bool,
    /// Spans recorded by the enabled executor over the whole run.
    spans_recorded: usize,
    /// CI gate: JSON snapshot and Chrome trace both parse back through
    /// `mlr_bench::json` with the expected content.
    export_roundtrip: bool,
}

/// The fig22 steady-hit allocation envelope, reused verbatim: telemetry
/// must not widen it.
const MAX_HIT_ALLOCS: f64 = 4.0;
const MAX_HIT_ALLOC_BYTES: f64 = 1024.0;
const MAX_OVERHEAD: f64 = 0.05;

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 16,
        learning_rate: 1e-3,
    }
}

fn chunk(loc: usize, n: usize) -> Vec<Complex64> {
    let mut rng = seeded(0xF1623 ^ loc as u64);
    (0..n)
        .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect()
}

/// Drives `iterations` whole-grid batch dispatches starting at
/// `*next_iteration` (advancing it), returning `(seconds, allocs, bytes)`.
fn drive(
    exec: &MemoizedExecutor,
    inputs: &[Vec<Complex64>],
    outputs: &mut [Vec<Complex64>],
    compute: &(dyn Fn(&[Complex64]) -> Vec<Complex64> + Sync),
    next_iteration: &mut usize,
    iterations: usize,
) -> (f64, u64, u64) {
    let before = snapshot();
    let start = Instant::now();
    for _ in 0..iterations {
        exec.begin_iteration(*next_iteration);
        *next_iteration += 1;
        let batch: Vec<ChunkRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(loc, input)| ChunkRequest {
                loc,
                input,
                compute,
            })
            .collect();
        let mut slots: Vec<&mut [Complex64]> =
            outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        exec.execute_batch_into(FftOpKind::Fu2D, &batch, &mut slots);
    }
    let seconds = start.elapsed().as_secs_f64();
    let (allocs, bytes) = delta(before, snapshot());
    (seconds, allocs, bytes)
}

/// Parses the snapshot JSON and the Chrome trace back through the bench
/// JSON reader and checks the expected content is in place.
fn check_export(telemetry: &Telemetry, expected_hit_chunks: f64) -> (usize, bool) {
    let snap = telemetry.snapshot().expect("telemetry is enabled");
    let spans_recorded = snap.spans.len();

    let json = match JsonValue::parse(&snap.to_json()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("snapshot JSON failed to parse: {e:?}");
            return (spans_recorded, false);
        }
    };
    let hit_chunks = json
        .get("counters.cache_hit_chunks")
        .and_then(JsonValue::as_f64)
        .unwrap_or(-1.0);
    let peek_count = json
        .get("stages.cache_peek.count")
        .and_then(JsonValue::as_f64)
        .unwrap_or(-1.0);
    let batches = json
        .get("counters.operator_batches")
        .and_then(JsonValue::as_f64)
        .unwrap_or(-1.0);

    let trace = match JsonValue::parse(&snap.to_chrome_trace()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("Chrome trace failed to parse: {e:?}");
            return (spans_recorded, false);
        }
    };
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::len)
        .unwrap_or(0);

    let ok = hit_chunks >= expected_hit_chunks
        && peek_count >= expected_hit_chunks
        && batches > 0.0
        && events == spans_recorded
        && events > 0;
    (spans_recorded, ok)
}

fn main() {
    // One thread, sequential batches: the subject is the per-chunk constant
    // factor of the recorder, and the allocation gate must count one
    // deterministic code path (same setup as fig22).
    std::env::set_var("RAYON_NUM_THREADS", "1");
    header(
        "Figure 23",
        "observability overhead: disabled vs enabled telemetry on the steady hit path",
    );
    let smoke = smoke_from_args();
    let (n, locations, steady, reps) = if smoke {
        (1024, 24, 6, 5)
    } else {
        (4096, 32, 8, 7)
    };
    println!(
        "chunk: {n} complex elems, {locations} locations, {steady} steady iterations \
         x {reps} interleaved repetitions per mode\n"
    );

    let plan = FftPlan::new(n);
    let compute = move |x: &[Complex64]| {
        let mut v = x.to_vec();
        plan.process(&mut v, Direction::Forward);
        v
    };
    let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, n)).collect();
    let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; locations];
    let memo = MemoConfig {
        warmup_iterations: 0,
        ..Default::default()
    };
    let chunks = (steady * locations) as u64;

    // Two executors over identical inputs: the only difference is the
    // recorder. Both are warmed into the all-cache-hit steady state before
    // any timed window.
    let off = MemoizedExecutor::new(memo, encoder(), 22);
    let on = MemoizedExecutor::new(memo, encoder(), 22).with_telemetry(Telemetry::enabled());
    let (mut off_iter, mut on_iter) = (0usize, 0usize);
    // Four warm-up rounds under the doorkeeper: prefiltered first sighting,
    // populate (miss), db-hit promote, cache-pool warm.
    let _ = drive(&off, &inputs, &mut outputs, &compute, &mut off_iter, 4);
    let _ = drive(&on, &inputs, &mut outputs, &compute, &mut on_iter, 4);

    // Interleave the modes and keep the per-mode minimum: alternating
    // windows see the same thermal/frequency environment, and the minimum
    // is the least-noisy estimator of the true constant factor.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut on_allocs = 0u64;
    let mut on_bytes = 0u64;
    for _ in 0..reps {
        let (secs, _, _) = drive(&off, &inputs, &mut outputs, &compute, &mut off_iter, steady);
        best_off = best_off.min(secs);
        let (secs, allocs, bytes) =
            drive(&on, &inputs, &mut outputs, &compute, &mut on_iter, steady);
        best_on = best_on.min(secs);
        on_allocs = allocs;
        on_bytes = bytes;
    }
    let off_stats = off.stats().total();
    let on_stats = on.stats().total();
    assert_eq!(
        off_stats.cache_hits, on_stats.cache_hits,
        "both modes must execute the identical all-hit schedule"
    );

    let disabled_ns = best_off * 1e9 / chunks as f64;
    let enabled_ns = best_on * 1e9 / chunks as f64;
    let overhead = enabled_ns / disabled_ns.max(1e-9) - 1.0;
    let overhead_within_bound = overhead <= MAX_OVERHEAD;
    let enabled_allocs_per_chunk = on_allocs as f64 / chunks as f64;
    let enabled_alloc_bytes_per_chunk = on_bytes as f64 / chunks as f64;
    let enabled_hit_allocation_free = enabled_allocs_per_chunk <= MAX_HIT_ALLOCS
        && enabled_alloc_bytes_per_chunk <= MAX_HIT_ALLOC_BYTES;

    let (spans_recorded, export_roundtrip) = check_export(on.telemetry(), chunks as f64);

    compare_row(
        "steady hit ns/chunk, telemetry disabled",
        "(informational)",
        &format!("{disabled_ns:.0} ns"),
    );
    compare_row(
        "steady hit ns/chunk, telemetry enabled",
        "(informational)",
        &format!("{enabled_ns:.0} ns"),
    );
    compare_row(
        "enabled/disabled overhead",
        "<= 5 %",
        &pct(overhead.max(0.0)),
    );
    compare_row(
        "enabled-mode allocations per hit chunk",
        "<= 4 / 1 KiB",
        &format!("{enabled_allocs_per_chunk:.2} allocs / {enabled_alloc_bytes_per_chunk:.0} B"),
    );
    compare_row(
        "snapshot + Chrome trace round-trip",
        "parses",
        if export_roundtrip { "parses" } else { "BROKEN" },
    );

    assert!(
        overhead_within_bound,
        "telemetry overhead {overhead:.3} exceeds the {MAX_OVERHEAD} bound \
         ({enabled_ns:.0} vs {disabled_ns:.0} ns/chunk)"
    );
    assert!(
        enabled_hit_allocation_free,
        "enabled-mode hit path allocates: {enabled_allocs_per_chunk:.2} allocs / \
         {enabled_alloc_bytes_per_chunk:.0} B per chunk"
    );
    assert!(export_roundtrip, "telemetry export failed to round-trip");

    let record = Record {
        smoke,
        chunk_elems: n,
        locations,
        steady_iterations: steady,
        repetitions: reps,
        disabled_ns_per_chunk: disabled_ns,
        enabled_ns_per_chunk: enabled_ns,
        overhead_fraction: overhead,
        overhead_within_bound,
        enabled_allocs_per_chunk,
        enabled_alloc_bytes_per_chunk,
        enabled_hit_allocation_free,
        spans_recorded,
        export_roundtrip,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_observability.json", &json).is_ok() {
                println!("\n[record written to BENCH_observability.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig23_observability", &record);
}
