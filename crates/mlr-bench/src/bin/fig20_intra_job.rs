//! Figure 20 (beyond the paper): deterministic intra-job chunk parallelism —
//! `intra_job_threads` × chunk size, speedup and hit-rate parity vs the
//! sequential schedule.
//!
//! The operator chunk loops used to run sequentially to preserve memo
//! determinism; the two-phase batch scheduler (parallel read-only
//! probe/compute, ordered commit) lifts that restriction without giving up
//! the bit-identical reconstruction contract. This harness sweeps the
//! chunk-thread count against chunk sizes and records, per cell:
//!
//! * **bit identity** — the reconstruction equals the sequential one, bit
//!   for bit (asserted, and gated in CI);
//! * **hit parity** — db/cache/failed-memo counts equal the sequential
//!   run's (asserted, and gated);
//! * **modeled speedup** — the deterministic critical-path speedup of the
//!   chunk schedule under the analytic cost model (machine-independent,
//!   gated at ≥ 2× for 4 threads);
//! * **measured wall time / speedup** — what this machine actually did
//!   (informational only: CI runners may have a single core, where wall
//!   speedup is meaningless but the modeled schedule is unchanged).
//!
//! The machine-readable record lands in `BENCH_intra_job.json` (and, like
//! every harness, under `target/experiments/`).

use mlr_bench::{compare_row, header, smoke_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Cell {
    chunk_size: usize,
    threads: usize,
    wall_seconds: f64,
    /// Sequential wall time / this cell's wall time (machine-dependent).
    wall_speedup: f64,
    /// Deterministic critical-path speedup of the chunk schedule.
    modeled_speedup: f64,
    /// Measured speedup of the parallel phases (chunk work / phase wall).
    achieved_speedup: f64,
    db_hits: u64,
    cache_hits: u64,
    failed_memo: u64,
    bit_identical: bool,
    hits_match: bool,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    n: usize,
    iterations: usize,
    thread_counts: Vec<usize>,
    chunk_sizes: Vec<usize>,
    cells: Vec<Cell>,
    /// Modeled speedup at 4 threads on the smallest chunk size (the CI gate).
    modeled_speedup_4t: f64,
    /// Every parallel cell reconstructed bit-identically to sequential.
    bit_identical: bool,
    /// Every parallel cell reproduced the sequential hit counts exactly.
    hit_parity: bool,
}

#[derive(Clone)]
struct RunOutcome {
    bits: Vec<u64>,
    hits: (u64, u64, u64),
    wall_seconds: f64,
    modeled_speedup: f64,
    achieved_speedup: f64,
}

fn run(config: MlrConfig, chunk_size: usize, threads: usize) -> RunOutcome {
    let mut config = config.with_intra_job_threads(threads);
    config.chunk_size = chunk_size;
    let pipeline = MlrPipeline::new(config);
    let start = Instant::now();
    let (result, executor) = pipeline.run_memoized();
    let wall_seconds = start.elapsed().as_secs_f64();
    let total = executor.stats().total();
    let parallel = executor.parallel_stats();
    RunOutcome {
        bits: result
            .reconstruction
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        hits: (total.db_hits, total.cache_hits, total.failed_memo),
        wall_seconds,
        modeled_speedup: parallel.modeled_speedup(),
        achieved_speedup: parallel.achieved_speedup(),
    }
}

fn main() {
    // Chunk-level threads are the parallelism under study: pin the rayon
    // shim's intra-kernel fan-out to one thread so the two grains do not
    // compete for cores (results are identical either way — this only
    // de-noises the timing columns).
    std::env::set_var("RAYON_NUM_THREADS", "1");
    header(
        "Figure 20",
        "intra-job chunk parallelism: threads × chunk size, speedup + hit parity vs sequential",
    );
    let smoke = smoke_from_args();
    let (n, angles, iterations) = if smoke { (12, 8, 5) } else { (16, 12, 6) };
    let thread_counts: Vec<usize> = if smoke {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    };
    let chunk_sizes: Vec<usize> = if smoke { vec![2, 4] } else { vec![2, 4, 8] };
    let config = MlrConfig::quick(n, angles).with_iterations(iterations);

    println!("problem: {n}³, {angles} angles, {iterations} ADMM iterations\n");
    println!(
        "{:>6} {:>8} {:>12} {:>9} {:>9} {:>9}  {:>14} {:>5} {:>5}",
        "chunk", "threads", "wall", "wall×", "model×", "phase×", "db/cache/fail", "bits", "hits"
    );

    let mut cells = Vec::new();
    let mut all_identical = true;
    let mut all_parity = true;
    let mut modeled_speedup_4t = 1.0;
    for &chunk_size in &chunk_sizes {
        let reference = run(config, chunk_size, 1);
        for &threads in &thread_counts {
            let outcome = if threads == 1 {
                // The reference run *is* the threads=1 cell.
                reference.clone()
            } else {
                run(config, chunk_size, threads)
            };
            let bit_identical = outcome.bits == reference.bits;
            let hits_match = outcome.hits == reference.hits;
            all_identical &= bit_identical;
            all_parity &= hits_match;
            if threads == 4 && chunk_size == chunk_sizes[0] {
                modeled_speedup_4t = outcome.modeled_speedup;
            }
            let wall_speedup = if outcome.wall_seconds > 0.0 {
                reference.wall_seconds / outcome.wall_seconds
            } else {
                1.0
            };
            println!(
                "{:>6} {:>8} {:>11.3}s {:>8.2}x {:>8.2}x {:>8.2}x  {:>4}/{:<4}/{:<4} {:>5} {:>5}",
                chunk_size,
                threads,
                outcome.wall_seconds,
                wall_speedup,
                outcome.modeled_speedup,
                outcome.achieved_speedup,
                outcome.hits.0,
                outcome.hits.1,
                outcome.hits.2,
                if bit_identical { "==" } else { "DIFF" },
                if hits_match { "==" } else { "DIFF" },
            );
            cells.push(Cell {
                chunk_size,
                threads,
                wall_seconds: outcome.wall_seconds,
                wall_speedup,
                modeled_speedup: outcome.modeled_speedup,
                achieved_speedup: outcome.achieved_speedup,
                db_hits: outcome.hits.0,
                cache_hits: outcome.hits.1,
                failed_memo: outcome.hits.2,
                bit_identical,
                hits_match,
            });
        }
    }

    println!();
    compare_row(
        "bit-identical for every thread count",
        "required",
        if all_identical { "holds" } else { "VIOLATED" },
    );
    compare_row(
        "hit counts identical to sequential",
        "required",
        if all_parity { "holds" } else { "VIOLATED" },
    );
    compare_row(
        "modeled speedup @ 4 threads",
        "≥ 2×",
        &format!("{modeled_speedup_4t:.2}x"),
    );

    assert!(all_identical, "a parallel schedule changed the bits");
    assert!(all_parity, "a parallel schedule changed the hit counts");
    assert!(
        modeled_speedup_4t >= 2.0,
        "modeled speedup at 4 threads below 2x: {modeled_speedup_4t}"
    );

    let record = Record {
        smoke,
        n,
        iterations,
        thread_counts,
        chunk_sizes,
        cells,
        modeled_speedup_4t,
        bit_identical: all_identical,
        hit_parity: all_parity,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_intra_job.json", &json).is_ok() {
                println!("\n[record written to BENCH_intra_job.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig20_intra_job", &record);
}
