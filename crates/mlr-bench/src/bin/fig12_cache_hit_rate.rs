//! Figure 12: hit rate of the private vs the global memoization cache, and
//! the similarity-comparison cost of each.
use mlr_bench::{compare_row, header, scale_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, Scale};
use mlr_memo::CacheKind;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    private_hit_rate: f64,
    global_hit_rate: f64,
    private_comparisons: u64,
    global_comparisons: u64,
}

fn main() {
    header(
        "Figure 12",
        "private vs global memoization cache (F_u2D and friends)",
    );
    let scale = scale_from_args();
    let n = scale.volume_size();
    let iterations = if scale == Scale::Tiny { 10 } else { 25 };
    let run = |kind: CacheKind| {
        let pipeline = MlrPipeline::new(
            MlrConfig::quick(n, n / 2)
                .with_iterations(iterations)
                .with_cache(kind),
        );
        let (_, executor) = pipeline.run_memoized();
        executor.cache_stats()
    };
    let private = run(CacheKind::Private);
    let global = run(CacheKind::Global);

    println!(
        "{:<10} {:>10} {:>14} {:>16}",
        "cache", "hit rate", "lookups", "comparisons"
    );
    println!(
        "{:<10} {:>10.3} {:>14} {:>16}",
        "private",
        private.hit_rate(),
        private.lookups,
        private.comparisons
    );
    println!(
        "{:<10} {:>10.3} {:>14} {:>16}",
        "global",
        global.hit_rate(),
        global.lookups,
        global.comparisons
    );
    println!();
    compare_row(
        "hit rates are similar",
        "private ≈ global",
        &format!("{:.3} vs {:.3}", private.hit_rate(), global.hit_rate()),
    );
    let saving = 1.0 - private.comparisons as f64 / global.comparisons.max(1) as f64;
    compare_row(
        "similarity-comparison saving (private)",
        "~85 %",
        &mlr_bench::pct(saving),
    );
    write_record(
        "fig12_cache_hit_rate",
        &Record {
            private_hit_rate: private.hit_rate(),
            global_hit_rate: global.hit_rate(),
            private_comparisons: private.comparisons,
            global_comparisons: global.comparisons,
        },
    );
}
