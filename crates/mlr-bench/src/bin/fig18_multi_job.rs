//! Figure 18 (beyond the paper): multi-job runtime with a shared, sharded
//! memoization database vs the same jobs run with isolated per-job
//! databases.
//!
//! The paper's distributed design keeps the memoization database on a
//! dedicated memory node; its payoff grows when many reconstructions share
//! it. This harness replays the beamline scenario — several reconstructions
//! of the same sample family submitted together — through `mlr-runtime`'s
//! worker pool over one `ShardedMemoDb`, then replays the identical jobs
//! with private databases, and compares hit rates, database footprint and
//! wall time. The machine-readable record lands in `BENCH_runtime.json`
//! (and, like every harness, under `target/experiments/`).

use mlr_bench::{compare_row, header, pct, scale_from_args, smoke_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, Scale};
use mlr_runtime::{JobSummary, ReconJob, Runtime, RuntimeConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct SideRecord {
    hit_rate: f64,
    cross_job_hit_rate: f64,
    store_entries: usize,
    store_value_bytes: u64,
    wall_seconds: f64,
}

#[derive(Serialize)]
struct Record {
    smoke: bool,
    jobs: usize,
    workers: usize,
    shards: usize,
    queue_capacity: usize,
    shared: SideRecord,
    isolated: SideRecord,
    cross_job_advantage: f64,
    queue_seconds_mean: f64,
    queue_seconds_max: f64,
    throughput_jobs_per_second: f64,
    utilisation: f64,
    job_summaries: Vec<JobSummary>,
}

fn main() {
    header(
        "Figure 18",
        "multi-job runtime: shared sharded memo DB vs isolated per-job DBs",
    );
    let scale = scale_from_args();
    // `--smoke` is the CI bench-smoke mode: smallest problem that still
    // exercises cross-job reuse, so the regression gate has a signal.
    let smoke = smoke_from_args();
    let n = if smoke || scale == Scale::Tiny {
        12
    } else {
        16
    };
    let iterations = if smoke || scale == Scale::Tiny { 5 } else { 8 };
    let jobs = 4usize;
    let workers = 2usize;
    let shards = 16usize;

    // The beamline scenario: the same sample family reconstructed several
    // times (replicated runs / parameter rechecks), submitted concurrently.
    let config = MlrConfig::quick(n, n / 2).with_iterations(iterations);

    // ---------------------------------------------------- shared store path
    let rt_config = RuntimeConfig {
        workers,
        queue_capacity: 8,
        shards,
        ..RuntimeConfig::matching(&config)
    };
    let queue_capacity = rt_config.queue_capacity;
    let runtime = Runtime::new(rt_config);
    let shared_start = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            runtime
                .submit(ReconJob::new(format!("sample-rep-{i}"), config))
                .expect("queue sized for the demo")
        })
        .collect();
    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait_report().expect("demo job completes"))
        .collect();
    let shared_wall = shared_start.elapsed().as_secs_f64();
    let stats = runtime.shutdown();
    let shared = SideRecord {
        hit_rate: stats.hit_rate(),
        cross_job_hit_rate: stats.cross_job_hit_rate(),
        store_entries: stats.store.entries,
        store_value_bytes: stats.store.value_bytes,
        wall_seconds: shared_wall,
    };

    // ------------------------------------------------- isolated per-job path
    let isolated_start = Instant::now();
    let mut iso_queries = 0u64;
    let mut iso_hits = 0u64;
    let mut iso_cross = 0u64;
    let mut iso_entries = 0usize;
    let mut iso_bytes = 0u64;
    for _ in 0..jobs {
        let pipeline = MlrPipeline::new(config);
        let (_result, executor) = pipeline.run_memoized();
        let s = executor.store().stats();
        iso_queries += s.queries;
        iso_hits += s.hits;
        iso_cross += s.cross_job_hits;
        iso_entries += s.entries;
        iso_bytes += s.value_bytes;
    }
    let isolated_wall = isolated_start.elapsed().as_secs_f64();
    let isolated = SideRecord {
        hit_rate: if iso_queries == 0 {
            0.0
        } else {
            iso_hits as f64 / iso_queries as f64
        },
        cross_job_hit_rate: if iso_queries == 0 {
            0.0
        } else {
            iso_cross as f64 / iso_queries as f64
        },
        store_entries: iso_entries,
        store_value_bytes: iso_bytes,
        wall_seconds: isolated_wall,
    };

    // ------------------------------------------------------------- reporting
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "store", "hit rate", "cross-job", "entries", "DB bytes", "wall"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>9.2}s",
        "shared",
        pct(shared.hit_rate),
        pct(shared.cross_job_hit_rate),
        shared.store_entries,
        shared.store_value_bytes,
        shared.wall_seconds
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>9.2}s",
        "isolated",
        pct(isolated.hit_rate),
        pct(isolated.cross_job_hit_rate),
        isolated.store_entries,
        isolated.store_value_bytes,
        isolated.wall_seconds
    );
    println!();
    for r in &reports {
        println!(
            "  job {:>2} {:<14} avoided {:>7}  cache hit {:>7}  queued {:>8.3}s  ran {:>7.2}s",
            r.job,
            r.name,
            pct(r.avoided_fraction),
            pct(r.cache_hit_rate),
            r.queue_seconds,
            r.run_seconds
        );
    }
    println!();
    compare_row(
        "cross-job hit rate (shared > isolated)",
        "> 0 vs = 0",
        &format!(
            "{} vs {}",
            pct(shared.cross_job_hit_rate),
            pct(isolated.cross_job_hit_rate)
        ),
    );
    compare_row(
        "database footprint (shared deduplicates)",
        "smaller",
        &format!(
            "{} vs {} bytes",
            shared.store_value_bytes, isolated.store_value_bytes
        ),
    );
    assert!(
        shared.cross_job_hit_rate > isolated.cross_job_hit_rate,
        "shared store must beat isolated databases on cross-job hit rate \
         ({} vs {})",
        shared.cross_job_hit_rate,
        isolated.cross_job_hit_rate
    );

    let record = Record {
        smoke,
        jobs,
        workers,
        shards,
        queue_capacity,
        cross_job_advantage: shared.cross_job_hit_rate - isolated.cross_job_hit_rate,
        shared,
        isolated,
        queue_seconds_mean: stats.queue_seconds_mean,
        queue_seconds_max: stats.queue_seconds_max,
        throughput_jobs_per_second: stats.throughput_jobs_per_second(),
        utilisation: stats.utilisation(),
        job_summaries: reports.iter().map(|r| r.summary()).collect(),
    };
    // The acceptance artifact at the repo root, plus the standard
    // target/experiments record.
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if std::fs::write("BENCH_runtime.json", &json).is_ok() {
                println!("\n[record written to BENCH_runtime.json]");
            }
        }
        Err(e) => eprintln!("failed to serialise record: {e}"),
    }
    write_record("fig18_multi_job", &record);
}
