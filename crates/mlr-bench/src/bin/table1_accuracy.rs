//! Table 1: impact of the memoization threshold τ on reconstruction accuracy.
use mlr_bench::{compare_row, header, scale_from_args, write_record};
use mlr_core::{MlrConfig, MlrPipeline, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    tau: f64,
    accuracy: f64,
    avoided_fraction: f64,
}

fn main() {
    header(
        "Table 1",
        "reconstruction accuracy vs memoization threshold τ",
    );
    let scale = scale_from_args();
    let n = scale.volume_size();
    let iterations = if scale == Scale::Tiny { 8 } else { 20 };
    let paper = [
        (0.86, 0.691),
        (0.88, 0.808),
        (0.90, 0.901),
        (0.92, 0.946),
        (0.94, 0.958),
        (0.96, 0.973),
    ];
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "τ", "paper accuracy", "reproduced", "FFT avoided"
    );
    for &(tau, paper_acc) in &paper {
        let pipeline = MlrPipeline::new(
            MlrConfig::quick(n, n / 2)
                .with_tau(tau)
                .with_iterations(iterations),
        );
        let report = pipeline.run_comparison();
        println!(
            "{:>6.2} {:>16.3} {:>16.3} {:>16}",
            tau,
            paper_acc,
            report.accuracy,
            mlr_bench::pct(report.avoided_fraction)
        );
        rows.push(Row {
            tau,
            accuracy: report.accuracy,
            avoided_fraction: report.avoided_fraction,
        });
    }
    println!();
    let monotone = rows
        .windows(2)
        .all(|w| w[1].accuracy + 0.02 >= w[0].accuracy);
    compare_row(
        "accuracy increases with τ",
        "yes",
        if monotone { "yes" } else { "mostly" },
    );
    compare_row(
        "accuracy at τ = 0.92",
        "0.946",
        &format!("{:.3}", rows[3].accuracy),
    );
    write_record("table1_accuracy", &rows);
}
