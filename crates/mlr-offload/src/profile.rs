//! Variable liveness profiles.
//!
//! ADMM-Offload decides what to move and when from a *profile* of one ADMM
//! iteration: for every offloading candidate, the first and last access in
//! every execution phase ("This requires profiling only a single ADMM-FFT
//! iteration and can be automated", §5.1). Here the profile is derived from
//! the analytic workload model: phase durations come from `mlr-sim`'s cost
//! model and the access pattern follows the roles of ψ, λ, g and g_prev in
//! the ADMM recurrences.

use mlr_sim::workload::{AdmmPhase, AdmmWorkload};
use mlr_sim::{CostModel, Seconds};
use serde::{Deserialize, Serialize};

/// One access window of a variable inside one phase, in absolute seconds
/// from the start of the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessWindow {
    /// The phase performing the access.
    pub phase: AdmmPhase,
    /// Time of the first access within the iteration.
    pub first: Seconds,
    /// Time of the last access within the iteration.
    pub last: Seconds,
}

/// The liveness profile of one variable across one ADMM iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableProfile {
    /// Variable name (ψ, λ, g, g_prev).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Whether the variable is an offloading candidate (no pointer aliases).
    pub offloadable: bool,
    /// Access windows in chronological order.
    pub windows: Vec<AccessWindow>,
}

impl VariableProfile {
    /// The idle gap (in seconds) between consecutive access windows `i` and
    /// `i + 1`; this bounds the offload + residency period and corresponds to
    /// the paper's *maximum prefetch distance* of the later window.
    pub fn gap_after(&self, i: usize) -> Option<Seconds> {
        if i + 1 < self.windows.len() {
            Some(self.windows[i + 1].first - self.windows[i].last)
        } else {
            None
        }
    }
}

/// The profile of a full ADMM iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationProfile {
    /// Phase start/end times in execution order.
    pub phases: Vec<(AdmmPhase, Seconds, Seconds)>,
    /// Per-variable liveness.
    pub variables: Vec<VariableProfile>,
    /// Total iteration duration.
    pub duration: Seconds,
    /// Total working-set bytes (all variables, resident baseline).
    pub total_bytes: u64,
}

impl IterationProfile {
    /// Builds the profile from the analytic workload model.
    pub fn from_workload(workload: &AdmmWorkload, cost: &CostModel) -> Self {
        let phase_times = workload.phase_times(cost, true);
        let mut phases = Vec::with_capacity(phase_times.len());
        let mut t = 0.0;
        for (phase, dur) in &phase_times {
            phases.push((*phase, t, t + dur));
            t += dur;
        }
        let duration = t;
        let span = |phase: AdmmPhase| -> (Seconds, Seconds) {
            phases
                .iter()
                .find(|(p, _, _)| *p == phase)
                .map(|&(_, s, e)| (s, e))
                .expect("phase present") // mlr-check: allow(unwrap-expect) — invariant: phase_times covers every AdmmPhase
        };
        let (lsp_s, lsp_e) = span(AdmmPhase::Lsp);
        let (rsp_s, rsp_e) = span(AdmmPhase::Rsp);
        let (lam_s, lam_e) = span(AdmmPhase::LambdaUpdate);
        let (_pen_s, pen_e) = span(AdmmPhase::PenaltyUpdate);

        let catalog = workload.variables();
        let lookup = |name: &str| -> u64 {
            catalog
                .iter()
                .find(|v| v.name == name)
                .map(|v| v.bytes)
                .unwrap_or(0)
        };

        // Access model (one iteration):
        //   ψ:      read at the start of LSP (forms g = ψ − λ/ρ), rewritten in
        //           RSP, read again in the λ update.
        //   λ:      read at the start of LSP, read+written in the λ update.
        //   g:      written throughout LSP (the CG gradient), read at the
        //           start of the *next* LSP — i.e. idle from the end of LSP
        //           to the end of the iteration.
        //   g_prev: read during LSP only.
        let head = |s: Seconds, e: Seconds| s + 0.05 * (e - s);
        let variables = vec![
            VariableProfile {
                name: "psi".to_string(),
                bytes: lookup("psi"),
                offloadable: true,
                windows: vec![
                    AccessWindow {
                        phase: AdmmPhase::Lsp,
                        first: lsp_s,
                        last: head(lsp_s, lsp_e),
                    },
                    AccessWindow {
                        phase: AdmmPhase::Rsp,
                        first: rsp_s,
                        last: rsp_e,
                    },
                    AccessWindow {
                        phase: AdmmPhase::LambdaUpdate,
                        first: lam_s,
                        last: lam_e,
                    },
                ],
            },
            VariableProfile {
                name: "lambda".to_string(),
                bytes: lookup("lambda"),
                offloadable: true,
                windows: vec![
                    AccessWindow {
                        phase: AdmmPhase::Lsp,
                        first: lsp_s,
                        last: head(lsp_s, lsp_e),
                    },
                    AccessWindow {
                        phase: AdmmPhase::Rsp,
                        first: rsp_s,
                        last: rsp_e,
                    },
                    AccessWindow {
                        phase: AdmmPhase::LambdaUpdate,
                        first: lam_s,
                        last: lam_e,
                    },
                ],
            },
            VariableProfile {
                name: "g".to_string(),
                bytes: lookup("g"),
                offloadable: true,
                windows: vec![
                    AccessWindow {
                        phase: AdmmPhase::Lsp,
                        first: lsp_s,
                        last: lsp_e,
                    },
                    AccessWindow {
                        phase: AdmmPhase::PenaltyUpdate,
                        first: pen_e,
                        last: pen_e,
                    },
                ],
            },
            VariableProfile {
                name: "g_prev".to_string(),
                bytes: lookup("g_prev"),
                offloadable: true,
                windows: vec![AccessWindow {
                    phase: AdmmPhase::Lsp,
                    first: lsp_s,
                    last: lsp_e,
                }],
            },
        ];

        let total_bytes = workload.total_bytes();
        Self {
            phases,
            variables,
            duration,
            total_bytes,
        }
    }

    /// Profile of one named variable.
    pub fn variable(&self, name: &str) -> Option<&VariableProfile> {
        self.variables.iter().find(|v| v.name == name)
    }

    /// Names of all offloadable variables.
    pub fn offloadable_names(&self) -> Vec<String> {
        self.variables
            .iter()
            .filter(|v| v.offloadable)
            .map(|v| v.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::workload::ProblemSize;

    fn profile() -> IterationProfile {
        let workload = AdmmWorkload::new(ProblemSize::paper_1k());
        let cost = CostModel::polaris(1);
        IterationProfile::from_workload(&workload, &cost)
    }

    #[test]
    fn phases_are_ordered_and_cover_duration() {
        let p = profile();
        assert_eq!(p.phases.len(), 4);
        for w in p.phases.windows(2) {
            assert!((w[0].2 - w[1].1).abs() < 1e-12, "phases must be contiguous");
        }
        assert!((p.phases.last().unwrap().2 - p.duration).abs() < 1e-9);
        assert!(p.duration > 0.0);
    }

    #[test]
    fn offloadable_variables_match_paper() {
        let p = profile();
        assert_eq!(p.offloadable_names(), vec!["psi", "lambda", "g", "g_prev"]);
        for name in ["psi", "lambda", "g", "g_prev"] {
            assert!(p.variable(name).unwrap().bytes > 0);
        }
        assert!(p.variable("does_not_exist").is_none());
    }

    #[test]
    fn access_windows_are_chronological_with_gaps() {
        let p = profile();
        let psi = p.variable("psi").unwrap();
        assert_eq!(psi.windows.len(), 3);
        for w in psi.windows.windows(2) {
            assert!(w[1].first >= w[0].last);
        }
        // ψ is idle during most of LSP: the gap after its first window is a
        // large fraction of the LSP phase.
        let gap = psi.gap_after(0).unwrap();
        let (_, lsp_s, lsp_e) = p.phases[0];
        assert!(
            gap > 0.5 * (lsp_e - lsp_s),
            "gap {gap} vs LSP {}",
            lsp_e - lsp_s
        );
        assert!(psi.gap_after(2).is_none());
    }
}
