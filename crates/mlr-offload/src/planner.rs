//! Offload/prefetch planning.
//!
//! A *plan* names the variables that will be offloaded to SSD during their
//! idle gaps and prefetched back before their next access. The paper's four
//! constraints (§5.1) gate which offload/prefetch pairs are admissible:
//!
//! 1. the prefetch must happen after the offload;
//! 2. a variable with zero prefetch distance is not offloaded;
//! 3. the offload must fit inside the idle gap (offload time < MPD);
//! 4. the prefetch must finish before the consuming phase starts — when it
//!    cannot, the exposed remainder is charged as performance loss.
//!
//! Among admissible plans the planner picks the one maximising
//! `MT = M / T`, the ratio of (fractional) memory saving to (fractional)
//! performance loss.

use crate::profile::{IterationProfile, VariableProfile};
use mlr_sim::{CostModel, Seconds};
use serde::{Deserialize, Serialize};

/// One planned offload/prefetch pair for one idle gap of one variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedMove {
    /// Variable name.
    pub variable: String,
    /// Index of the access window after which the variable is offloaded.
    pub after_window: usize,
    /// Offload start time (immediately after the window's last access).
    pub offload_start: Seconds,
    /// Offload completion time.
    pub offload_end: Seconds,
    /// Prefetch start time.
    pub prefetch_start: Seconds,
    /// Prefetch completion time.
    pub prefetch_end: Seconds,
    /// Time the variable's next access actually needs it.
    pub needed_at: Seconds,
    /// Seconds of prefetch exposed on the critical path (`prefetch_end`
    /// beyond `needed_at`).
    pub exposed: Seconds,
}

/// A complete offload plan: the selected variables and their moves.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OffloadPlan {
    /// Variables included in the plan.
    pub variables: Vec<String>,
    /// Every planned offload/prefetch pair.
    pub moves: Vec<PlannedMove>,
}

/// Evaluation of a plan against one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanEvaluation {
    /// Fractional memory saving `M` (peak-resident reduction vs. no offload).
    pub memory_saving: f64,
    /// Fractional performance loss `T` (iteration-time increase).
    pub performance_loss: f64,
    /// The selection metric `MT = M / T` (∞-guarded).
    pub mt: f64,
    /// Absolute peak resident bytes under the plan.
    pub peak_bytes: u64,
    /// Iteration duration under the plan.
    pub duration: Seconds,
}

/// The ADMM-Offload planner.
pub struct OffloadPlanner<'a> {
    profile: &'a IterationProfile,
    cost: &'a CostModel,
}

impl<'a> OffloadPlanner<'a> {
    /// Creates a planner over one iteration profile and a cost model.
    pub fn new(profile: &'a IterationProfile, cost: &'a CostModel) -> Self {
        Self { profile, cost }
    }

    /// Builds the admissible moves for one variable: one offload/prefetch
    /// pair per idle gap that satisfies constraints 1–3; constraint 4
    /// violations are allowed but show up as exposed prefetch time.
    fn moves_for(&self, var: &VariableProfile) -> Vec<PlannedMove> {
        let mut moves = Vec::new();
        let bytes = var.bytes as f64;
        let offload_time = self.cost.ssd_write_time(bytes);
        let prefetch_time = self.cost.ssd_read_time(bytes);
        for (i, window) in var.windows.iter().enumerate() {
            let Some(gap) = var.gap_after(i) else {
                continue;
            };
            // Constraint 2: zero prefetch distance → skip.
            if gap <= 0.0 {
                continue;
            }
            // Constraint 3: the offload must fit inside the gap.
            if offload_time >= gap {
                continue;
            }
            let offload_start = window.last;
            let offload_end = offload_start + offload_time;
            let needed_at = var.windows[i + 1].first;
            // Constraint 4 (and 1): prefetch as late as possible while trying
            // to finish before the next access, but never before the offload
            // completes.
            let ideal_start = needed_at - prefetch_time;
            let prefetch_start = ideal_start.max(offload_end);
            let prefetch_end = prefetch_start + prefetch_time;
            let exposed = (prefetch_end - needed_at).max(0.0);
            moves.push(PlannedMove {
                variable: var.name.clone(),
                after_window: i,
                offload_start,
                offload_end,
                prefetch_start,
                prefetch_end,
                needed_at,
                exposed,
            });
        }
        moves
    }

    /// Builds the plan that offloads exactly the named variables.
    pub fn plan_for(&self, variables: &[String]) -> OffloadPlan {
        let mut moves = Vec::new();
        for name in variables {
            if let Some(var) = self.profile.variable(name) {
                if var.offloadable {
                    moves.extend(self.moves_for(var));
                }
            }
        }
        OffloadPlan {
            variables: variables.to_vec(),
            moves,
        }
    }

    /// Evaluates a plan: peak-memory saving, performance loss and `MT`.
    pub fn evaluate(&self, plan: &OffloadPlan) -> PlanEvaluation {
        let baseline_peak = self.profile.total_bytes as f64;
        // Memory saving: a variable that has at least one planned move spends
        // its idle gaps on SSD; its contribution to the *peak* goes away when
        // the peak occurs inside one of those gaps. The iteration's memory
        // peak is during LSP (FFT work buffers live there), which is exactly
        // when ψ, λ (after their initial read) and g_prev (after LSP) are
        // idle; count a variable as saved if it has any admissible move whose
        // gap covers a majority of the iteration's longest phase.
        let longest_phase = self
            .profile
            .phases
            .iter()
            .map(|&(_, s, e)| e - s)
            .fold(0.0, f64::max);
        let mut saved_bytes = 0.0;
        for name in &plan.variables {
            let Some(var) = self.profile.variable(name) else {
                continue;
            };
            let has_covering_move = plan
                .moves
                .iter()
                .filter(|m| &m.variable == name)
                .any(|m| m.prefetch_start - m.offload_end >= 0.25 * longest_phase);
            if has_covering_move {
                saved_bytes += var.bytes as f64;
            }
        }
        let memory_saving = (saved_bytes / baseline_peak).clamp(0.0, 1.0);

        // Performance loss: exposed prefetch time plus a small CPU-side
        // staging overhead per move (pinning/unpinning buffers).
        let staging: Seconds = plan
            .moves
            .iter()
            .map(|m| 0.02 * self.cost.ssd_write_time(self.bytes_of(&m.variable)))
            .sum();
        let exposed: Seconds = plan.moves.iter().map(|m| m.exposed).sum();
        let duration = self.profile.duration + exposed + staging;
        let performance_loss = (duration - self.profile.duration) / self.profile.duration;
        let mt = if performance_loss <= 1e-9 {
            if memory_saving > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            memory_saving / performance_loss
        };
        PlanEvaluation {
            memory_saving,
            performance_loss,
            mt,
            peak_bytes: (baseline_peak - saved_bytes).max(0.0) as u64,
            duration,
        }
    }

    fn bytes_of(&self, name: &str) -> f64 {
        self.profile
            .variable(name)
            .map(|v| v.bytes as f64)
            .unwrap_or(0.0)
    }

    /// Enumerates all subsets of the offloadable variables, evaluates each,
    /// and returns the plan with the largest `MT` (ties broken towards larger
    /// memory saving). Returns the plan and its evaluation.
    pub fn best_plan(&self) -> (OffloadPlan, PlanEvaluation) {
        let candidates = self.profile.offloadable_names();
        let n = candidates.len();
        let mut best: Option<(OffloadPlan, PlanEvaluation)> = None;
        for mask in 1u32..(1 << n) {
            let subset: Vec<String> = candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, name)| name.clone())
                .collect();
            let plan = self.plan_for(&subset);
            if plan.moves.is_empty() {
                continue;
            }
            let eval = self.evaluate(&plan);
            // Compare MT with a relative tolerance: plans whose MT only
            // differs by rounding are ties, resolved towards the larger
            // memory saving (more offloaded variables at the same ratio).
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    let tol = 1e-6 * b.mt.abs().max(1.0);
                    eval.mt > b.mt + tol
                        || ((eval.mt - b.mt).abs() <= tol && eval.memory_saving > b.memory_saving)
                }
            };
            if better {
                best = Some((plan, eval));
            }
        }
        best.unwrap_or((
            OffloadPlan::default(),
            PlanEvaluation {
                memory_saving: 0.0,
                performance_loss: 0.0,
                mt: 0.0,
                peak_bytes: self.profile.total_bytes,
                duration: self.profile.duration,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::workload::{AdmmWorkload, ProblemSize};

    fn setup() -> (IterationProfile, CostModel) {
        let workload = AdmmWorkload::new(ProblemSize::paper_1k());
        let cost = CostModel::polaris(1);
        (IterationProfile::from_workload(&workload, &cost), cost)
    }

    #[test]
    fn moves_respect_constraints() {
        let (profile, cost) = setup();
        let planner = OffloadPlanner::new(&profile, &cost);
        let plan = planner.plan_for(&profile.offloadable_names());
        assert!(!plan.moves.is_empty());
        for m in &plan.moves {
            // Constraint 1: prefetch after offload.
            assert!(m.prefetch_start >= m.offload_end, "{m:?}");
            // Constraint 3: the offload finished before the next access.
            assert!(m.offload_end < m.needed_at, "{m:?}");
            // Exposure is non-negative and equals any overrun past needed_at.
            assert!(m.exposed >= 0.0);
            assert!((m.exposed - (m.prefetch_end - m.needed_at).max(0.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn best_plan_beats_offloading_everything_blindly() {
        let (profile, cost) = setup();
        let planner = OffloadPlanner::new(&profile, &cost);
        let (best, best_eval) = planner.best_plan();
        assert!(!best.variables.is_empty());
        assert!(best_eval.mt > 0.0);
        // The paper selects ψ, λ and g for offloading; g_prev's only access
        // window has no following gap inside the iteration, so it cannot be
        // prefetch-planned.
        assert!(best.variables.contains(&"psi".to_string()));
        assert!(best.variables.contains(&"lambda".to_string()));
    }

    #[test]
    fn evaluation_in_paper_ballpark() {
        // Figure 13: ADMM-Offload saves ~29 % of memory at ~21 % performance
        // loss (MT = 1.38). The reproduction should land in the same regime:
        // meaningful saving, far smaller loss than greedy, MT > 1.
        let (profile, cost) = setup();
        let planner = OffloadPlanner::new(&profile, &cost);
        let (_, eval) = planner.best_plan();
        assert!(
            eval.memory_saving > 0.15 && eval.memory_saving < 0.45,
            "M {}",
            eval.memory_saving
        );
        assert!(eval.performance_loss < 0.5, "T {}", eval.performance_loss);
        assert!(eval.mt > 1.0, "MT {}", eval.mt);
    }

    #[test]
    fn empty_plan_evaluates_to_zero_saving() {
        let (profile, cost) = setup();
        let planner = OffloadPlanner::new(&profile, &cost);
        let plan = planner.plan_for(&[]);
        let eval = planner.evaluate(&plan);
        assert_eq!(eval.memory_saving, 0.0);
        assert_eq!(eval.peak_bytes, profile.total_bytes);
    }
}
