//! # mlr-offload
//!
//! ADMM-Offload (§5.1 of the paper): reduce the CPU-memory footprint of
//! ADMM-FFT by moving large auxiliary variables (ψ, λ, g, g_prev) to SSD
//! while they are not being accessed, and prefetching them back just before
//! the phase that needs them — without exposing the data movement on the
//! critical path if it can be helped.
//!
//! The crate has four pieces:
//!
//! * [`profile`] — the per-variable liveness profile of one ADMM iteration
//!   (which phase touches which variable, when, and how large it is),
//!   derived from the analytic workload model in `mlr-sim`.
//! * [`planner`] — enumerates offload/prefetch plans, rejects those that
//!   violate the paper's four constraints, prices memory saving `M` and
//!   performance loss `T` for the rest, and selects the plan with the
//!   largest `MT = M / T`.
//! * [`simulate`] — produces RSS-over-time traces and total execution time
//!   for no offloading, greedy offloading, LRU-style offloading and the
//!   planned ADMM-Offload (Figure 13 and the §5.1 LRU comparison).
//! * [`store`] — a real file-backed variable store: offloaded variables are
//!   written to and read back from disk, demonstrating the mechanism end to
//!   end at laptop scale.

pub mod planner;
pub mod profile;
pub mod simulate;
pub mod store;

pub use planner::{OffloadPlan, OffloadPlanner, PlanEvaluation};
pub use profile::{AccessWindow, IterationProfile, VariableProfile};
pub use simulate::{simulate_strategy, OffloadStrategy, OffloadTrace};
pub use store::SsdStore;
