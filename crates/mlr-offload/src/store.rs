//! A file-backed variable store.
//!
//! The planner and the simulation model offloading analytically; this store
//! demonstrates the mechanism for real: a named `f64` array is serialised to
//! a file (the stand-in for the node-local NVMe SSD), dropped from memory,
//! and read back on prefetch. The reconstruction pipeline in `mlr-core` uses
//! it when offloading is enabled at laptop scale, which verifies that a
//! round-tripped variable is bit-identical.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A directory-backed store for named `f64` arrays.
#[derive(Debug)]
pub struct SsdStore {
    dir: PathBuf,
    offloaded: HashMap<String, usize>,
    bytes_written: u64,
    bytes_read: u64,
}

impl SsdStore {
    /// Creates a store rooted at `dir` (created if missing).
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            offloaded: HashMap::new(),
            bytes_written: 0,
            bytes_read: 0,
        })
    }

    /// Creates a store in a fresh subdirectory of the system temp directory.
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory.
    pub fn temp(tag: &str) -> std::io::Result<Self> {
        let dir = std::env::temp_dir().join(format!("mlr-offload-{tag}-{}", std::process::id()));
        Self::new(dir)
    }

    fn path_for(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.bin"))
    }

    /// Offloads (writes) a variable. The caller is expected to drop its
    /// in-memory copy afterwards.
    ///
    /// # Errors
    /// Returns any I/O error from writing the file.
    pub fn offload(&mut self, name: &str, data: &[f64]) -> std::io::Result<()> {
        let mut file = fs::File::create(self.path_for(name))?;
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        file.write_all(&bytes)?;
        file.flush()?;
        self.bytes_written += bytes.len() as u64;
        self.offloaded.insert(name.to_string(), data.len());
        Ok(())
    }

    /// Prefetches (reads back) a previously offloaded variable.
    ///
    /// # Errors
    /// Returns `NotFound` when the variable was never offloaded, or any I/O
    /// error from reading the file.
    pub fn prefetch(&mut self, name: &str) -> std::io::Result<Vec<f64>> {
        let len = *self.offloaded.get(name).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{name} not offloaded"),
            )
        })?;
        let mut file = fs::File::open(self.path_for(name))?;
        let mut bytes = Vec::with_capacity(len * 8);
        file.read_to_end(&mut bytes)?;
        self.bytes_read += bytes.len() as u64;
        let out = bytes
            .chunks_exact(8)
            .map(|c| {
                let mut word = [0u8; 8];
                word.copy_from_slice(c);
                f64::from_le_bytes(word)
            })
            .collect();
        Ok(out)
    }

    /// Removes a variable's backing file.
    ///
    /// # Errors
    /// Returns any I/O error from deleting the file.
    pub fn evict(&mut self, name: &str) -> std::io::Result<()> {
        if self.offloaded.remove(name).is_some() {
            fs::remove_file(self.path_for(name))?;
        }
        Ok(())
    }

    /// Names of currently offloaded variables.
    pub fn offloaded_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.offloaded.keys().cloned().collect();
        names.sort();
        names
    }

    /// Total bytes written / read so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_written, self.bytes_read)
    }
}

impl Drop for SsdStore {
    fn drop(&mut self) {
        // Best-effort cleanup of the backing files.
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_prefetch_roundtrip_is_bit_identical() {
        let mut store = SsdStore::temp("roundtrip").unwrap();
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e6).collect();
        store.offload("psi", &data).unwrap();
        let back = store.prefetch("psi").unwrap();
        assert_eq!(back, data);
        let (w, r) = store.traffic();
        assert_eq!(w, 8000);
        assert_eq!(r, 8000);
    }

    #[test]
    fn prefetch_unknown_variable_errors() {
        let mut store = SsdStore::temp("unknown").unwrap();
        let err = store.prefetch("nope").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn evict_removes_variable() {
        let mut store = SsdStore::temp("evict").unwrap();
        store.offload("g", &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(store.offloaded_names(), vec!["g"]);
        store.evict("g").unwrap();
        assert!(store.offloaded_names().is_empty());
        assert!(store.prefetch("g").is_err());
        // Evicting again is a no-op.
        store.evict("g").unwrap();
    }

    #[test]
    fn multiple_variables_coexist() {
        let mut store = SsdStore::temp("multi").unwrap();
        store.offload("a", &[1.0; 10]).unwrap();
        store.offload("b", &[2.0; 20]).unwrap();
        assert_eq!(store.offloaded_names(), vec!["a", "b"]);
        assert_eq!(store.prefetch("a").unwrap().len(), 10);
        assert_eq!(store.prefetch("b").unwrap()[0], 2.0);
    }
}
