//! Offloading-strategy simulation.
//!
//! Reproduces Figure 13: RSS over time and total execution time for
//! (1) plain ADMM, (2) ADMM with greedy offloading and (3) ADMM-Offload, plus
//! the LRU-style baseline from the §5.1 discussion. Memory traces are built
//! with `mlr-sim`'s tiered [`MemoryTracker`]; time comes from the analytic
//! workload model plus the exposed data-movement each strategy incurs.

use crate::planner::{OffloadPlan, OffloadPlanner};
use crate::profile::IterationProfile;
use mlr_sim::memory::{MemTier, MemoryTracker};
use mlr_sim::{CostModel, Seconds};
use serde::{Deserialize, Serialize};

/// The offloading strategy being simulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OffloadStrategy {
    /// No offloading: everything stays resident in CPU DRAM.
    None,
    /// Greedy: the four largest variables are offloaded as soon as they are
    /// produced and fetched on demand; the fetches are exposed on the
    /// critical path.
    Greedy,
    /// LRU-style: variables are offloaded only under capacity pressure
    /// (given a DRAM budget) and fetched on demand without prefetch.
    Lru {
        /// DRAM budget in bytes.
        dram_limit_bytes: u64,
    },
    /// The planned ADMM-Offload.
    Planned(OffloadPlan),
}

/// Result of simulating one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadTrace {
    /// Strategy label for reports.
    pub label: String,
    /// CPU-DRAM RSS over time, `(seconds, bytes)`.
    pub rss: Vec<(Seconds, u64)>,
    /// Peak CPU-DRAM residency in bytes.
    pub peak_bytes: u64,
    /// Total execution time over the simulated iterations.
    pub total_seconds: Seconds,
    /// Fractional memory saving relative to the no-offload peak.
    pub memory_saving: f64,
    /// Fractional performance loss relative to the no-offload runtime.
    pub performance_loss: f64,
    /// The MT selection metric (`memory_saving / performance_loss`).
    pub mt: f64,
}

/// Simulates `iterations` ADMM iterations under one strategy.
pub fn simulate_strategy(
    profile: &IterationProfile,
    cost: &CostModel,
    strategy: &OffloadStrategy,
    iterations: usize,
) -> OffloadTrace {
    match strategy {
        OffloadStrategy::None => simulate_none(profile, iterations),
        OffloadStrategy::Greedy => simulate_greedy(profile, cost, iterations),
        OffloadStrategy::Lru { dram_limit_bytes } => {
            simulate_lru(profile, cost, iterations, *dram_limit_bytes)
        }
        OffloadStrategy::Planned(plan) => simulate_planned(profile, cost, plan, iterations),
    }
}

/// Convenience: simulate all three Figure-13 strategies plus LRU and return
/// them in presentation order.
pub fn simulate_all(
    profile: &IterationProfile,
    cost: &CostModel,
    iterations: usize,
) -> Vec<OffloadTrace> {
    let planner = OffloadPlanner::new(profile, cost);
    let (plan, _) = planner.best_plan();
    let lru_budget = (profile.total_bytes as f64 * 0.75) as u64;
    vec![
        simulate_strategy(profile, cost, &OffloadStrategy::None, iterations),
        simulate_strategy(profile, cost, &OffloadStrategy::Greedy, iterations),
        simulate_strategy(
            profile,
            cost,
            &OffloadStrategy::Lru {
                dram_limit_bytes: lru_budget,
            },
            iterations,
        ),
        simulate_strategy(profile, cost, &OffloadStrategy::Planned(plan), iterations),
    ]
}

fn offloadable_bytes(profile: &IterationProfile) -> u64 {
    profile
        .variables
        .iter()
        .filter(|v| v.offloadable)
        .map(|v| v.bytes)
        .sum()
}

fn resident_baseline(profile: &IterationProfile) -> u64 {
    profile.total_bytes
}

fn finish(
    label: &str,
    rss: Vec<(Seconds, u64)>,
    peak: u64,
    total: Seconds,
    baseline_peak: u64,
    baseline_total: Seconds,
) -> OffloadTrace {
    let memory_saving = 1.0 - peak as f64 / baseline_peak as f64;
    let performance_loss = (total - baseline_total) / baseline_total;
    let mt = if performance_loss <= 1e-9 {
        if memory_saving > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        memory_saving / performance_loss
    };
    OffloadTrace {
        label: label.to_string(),
        rss,
        peak_bytes: peak,
        total_seconds: total,
        memory_saving: memory_saving.max(0.0),
        performance_loss: performance_loss.max(0.0),
        mt,
    }
}

fn simulate_none(profile: &IterationProfile, iterations: usize) -> OffloadTrace {
    let baseline = resident_baseline(profile);
    let total = profile.duration * iterations as f64;
    let mut tracker = MemoryTracker::new();
    tracker.alloc("working_set", baseline, MemTier::CpuDram, 0.0);
    // Flat trace: sample at every phase boundary of every iteration.
    let mut rss = vec![(0.0, baseline)];
    for it in 0..iterations {
        let base_t = it as f64 * profile.duration;
        for &(_, _, end) in &profile.phases {
            rss.push((base_t + end, baseline));
        }
    }
    finish("ADMM", rss, baseline, total, baseline, total)
}

fn simulate_greedy(
    profile: &IterationProfile,
    cost: &CostModel,
    iterations: usize,
) -> OffloadTrace {
    let baseline = resident_baseline(profile);
    let baseline_total = profile.duration * iterations as f64;
    let off_bytes = offloadable_bytes(profile);
    // The greedy strategy keeps the big four on SSD whenever possible, so the
    // resident peak excludes them except while one is being used.
    let largest: u64 = profile
        .variables
        .iter()
        .filter(|v| v.offloadable)
        .map(|v| v.bytes)
        .max()
        .unwrap_or(0);
    let peak = baseline - off_bytes + largest;

    // Every access window of every offloadable variable triggers a demand
    // read and a write-back, fully exposed.
    let mut exposed_per_iter = 0.0;
    for var in profile.variables.iter().filter(|v| v.offloadable) {
        let per_access =
            cost.ssd_read_time(var.bytes as f64) + cost.ssd_write_time(var.bytes as f64);
        exposed_per_iter += per_access * var.windows.len() as f64;
    }
    let iter_time = profile.duration + exposed_per_iter;
    let total = iter_time * iterations as f64;

    let mut rss = Vec::new();
    for it in 0..iterations {
        let base_t = it as f64 * iter_time;
        rss.push((base_t, baseline - off_bytes));
        // While a variable is in use it is resident; approximate with the
        // largest one resident during the LSP phase.
        rss.push((base_t + 0.1 * iter_time, peak));
        rss.push((base_t + 0.9 * iter_time, baseline - off_bytes));
    }
    finish(
        "ADMM greedy offload",
        rss,
        peak,
        total,
        baseline,
        baseline_total,
    )
}

fn simulate_lru(
    profile: &IterationProfile,
    cost: &CostModel,
    iterations: usize,
    dram_limit: u64,
) -> OffloadTrace {
    let baseline = resident_baseline(profile);
    let baseline_total = profile.duration * iterations as f64;
    // Under a DRAM budget, the LRU policy evicts the least-recently-used
    // offloadable variables until the budget is met, then demand-fetches each
    // on its next access (no prefetch → exposed read, plus the eviction
    // write).
    let mut over = baseline.saturating_sub(dram_limit);
    let mut evicted: Vec<&crate::profile::VariableProfile> = Vec::new();
    for var in profile.variables.iter().filter(|v| v.offloadable) {
        if over == 0 {
            break;
        }
        evicted.push(var);
        over = over.saturating_sub(var.bytes);
    }
    let peak = baseline.min(dram_limit.max(baseline - offloadable_bytes(profile)));
    let mut exposed_per_iter = 0.0;
    for var in &evicted {
        // Each access window of an evicted variable demand-fetches it and
        // later evicts it again.
        exposed_per_iter += (cost.ssd_read_time(var.bytes as f64)
            + cost.ssd_write_time(var.bytes as f64))
            * var.windows.len() as f64
            * 0.6; // some accesses find it already resident
    }
    let iter_time = profile.duration + exposed_per_iter;
    let total = iter_time * iterations as f64;
    let mut rss = Vec::new();
    for it in 0..iterations {
        let base_t = it as f64 * iter_time;
        rss.push((base_t, peak));
        rss.push((base_t + iter_time, peak));
    }
    finish(
        "ADMM LRU offload",
        rss,
        peak,
        total,
        baseline,
        baseline_total,
    )
}

fn simulate_planned(
    profile: &IterationProfile,
    cost: &CostModel,
    plan: &OffloadPlan,
    iterations: usize,
) -> OffloadTrace {
    let baseline = resident_baseline(profile);
    let baseline_total = profile.duration * iterations as f64;
    let planner = OffloadPlanner::new(profile, cost);
    let eval = planner.evaluate(plan);
    let iter_time = eval.duration;
    let total = iter_time * iterations as f64;

    // RSS trace: start at the full working set, dip while planned variables
    // sit on SSD, return on prefetch.
    let saved = baseline - eval.peak_bytes;
    let mut rss = Vec::new();
    for it in 0..iterations {
        let base_t = it as f64 * iter_time;
        rss.push((base_t, baseline));
        if let (Some(first), Some(last)) = (
            plan.moves
                .iter()
                .map(|m| m.offload_end)
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.min(x)))
                }),
            plan.moves
                .iter()
                .map(|m| m.prefetch_start)
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.max(x)))
                }),
        ) {
            rss.push((base_t + first, baseline - saved));
            rss.push((base_t + last, baseline));
        }
        rss.push((base_t + iter_time, baseline));
    }
    finish(
        "ADMM offload",
        rss,
        eval.peak_bytes,
        total,
        baseline,
        baseline_total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::IterationProfile;
    use mlr_sim::workload::{AdmmWorkload, ProblemSize};

    fn setup() -> (IterationProfile, CostModel) {
        let workload = AdmmWorkload::new(ProblemSize::paper_1k());
        let cost = CostModel::polaris(1);
        (IterationProfile::from_workload(&workload, &cost), cost)
    }

    #[test]
    fn figure13_shape_holds() {
        // ADMM-Offload saves memory at a far smaller performance cost than
        // greedy offloading; greedy saves more memory but loses much more
        // time (its MT is worse).
        let (profile, cost) = setup();
        let traces = simulate_all(&profile, &cost, 3);
        let none = &traces[0];
        let greedy = &traces[1];
        let lru = &traces[2];
        let planned = &traces[3];

        assert_eq!(none.memory_saving, 0.0);
        assert!(greedy.memory_saving > planned.memory_saving);
        assert!(planned.memory_saving > 0.15);
        assert!(greedy.performance_loss > planned.performance_loss);
        assert!(
            planned.mt > greedy.mt,
            "planned MT {} vs greedy {}",
            planned.mt,
            greedy.mt
        );
        // The §5.1 claim: ADMM-Offload outperforms LRU-based offloading.
        assert!(planned.total_seconds < lru.total_seconds);
        // Peaks are ordered: greedy < planned < none.
        assert!(greedy.peak_bytes < planned.peak_bytes);
        assert!(planned.peak_bytes < none.peak_bytes);
    }

    #[test]
    fn traces_are_time_ordered_and_positive() {
        let (profile, cost) = setup();
        for trace in simulate_all(&profile, &cost, 2) {
            assert!(!trace.rss.is_empty(), "{}", trace.label);
            for w in trace.rss.windows(2) {
                assert!(w[1].0 >= w[0].0, "{} trace not ordered", trace.label);
            }
            assert!(trace.total_seconds > 0.0);
            assert!(trace.peak_bytes > 0);
        }
    }

    #[test]
    fn lru_budget_limits_peak() {
        let (profile, cost) = setup();
        let budget = (profile.total_bytes as f64 * 0.7) as u64;
        let trace = simulate_strategy(
            &profile,
            &cost,
            &OffloadStrategy::Lru {
                dram_limit_bytes: budget,
            },
            2,
        );
        assert!(trace.peak_bytes <= budget);
        assert!(trace.performance_loss > 0.0);
    }
}
