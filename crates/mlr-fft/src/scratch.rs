//! Reusable scratch arenas for the per-chunk FFT hot path.
//!
//! Every chunk-level transform used to allocate its working buffers afresh:
//! the Bluestein chirp product, the USFFT fine grids, the 2-D transpose
//! buffer, the per-plane column scratch. On the memoized hot path those
//! allocations dominate the constant factor of a hit (the FFT itself is
//! skipped, the allocator is not), and on the miss path they churn the
//! allocator once per chunk. A [`ScratchPool`] amortises them: buffers are
//! leased, used, and returned on drop, so after the first few transforms the
//! steady state performs **zero** allocations per call.
//!
//! The pool is a plain mutex-guarded free list. Concurrent callers (the
//! worker threads the `ConcurrencyGovernor` grants to a batch, or rayon's
//! plane-level fan-out) each pop their own buffer, so the pool's resident
//! size converges to the peak number of concurrent leases — one buffer per
//! worker identity, never one per chunk. Reuse is invisible numerically:
//! leases are either zero-filled ([`ScratchPool::lease_zeroed`]) or handed
//! out with unspecified contents for callers that overwrite every element
//! ([`ScratchPool::lease`]).

use mlr_math::Complex64;
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};

/// A free list of reusable `Complex64` buffers.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<Vec<Complex64>>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the pool (diagnostics).
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }

    /// Leases a buffer of exactly `len` elements with **unspecified**
    /// contents — for callers that overwrite every element (gather arenas,
    /// transpose targets). Returns the buffer to the pool on drop.
    pub fn lease(&self, len: usize) -> ScratchLease<'_> {
        let mut buf = self.free.lock().pop().unwrap_or_default();
        buf.resize(len, Complex64::ZERO);
        ScratchLease { pool: self, buf }
    }

    /// Leases a buffer of exactly `len` elements, zero-filled — for sparse
    /// writers (fine-grid spreading, zero-padded chirp products).
    pub fn lease_zeroed(&self, len: usize) -> ScratchLease<'_> {
        let mut lease = self.lease(len);
        lease.buf.fill(Complex64::ZERO);
        lease
    }

    fn give_back(&self, buf: Vec<Complex64>) {
        self.free.lock().push(buf);
    }
}

/// A leased scratch buffer; dereferences to `[Complex64]` and returns its
/// storage to the owning [`ScratchPool`] on drop.
#[derive(Debug)]
pub struct ScratchLease<'a> {
    pool: &'a ScratchPool,
    buf: Vec<Complex64>,
}

impl Deref for ScratchLease<'_> {
    type Target = [Complex64];
    fn deref(&self) -> &[Complex64] {
        &self.buf
    }
}

impl DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut [Complex64] {
        &mut self.buf
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_reuses_returned_buffers() {
        let pool = ScratchPool::new();
        {
            let mut a = pool.lease(16);
            a[3] = Complex64::new(1.0, -1.0);
        }
        assert_eq!(pool.idle(), 1);
        // The returned buffer is reused (no second allocation grows the
        // pool) and a zeroed lease really is zeroed despite the stale write.
        let b = pool.lease_zeroed(16);
        assert!(b.iter().all(|z| z.re == 0.0 && z.im == 0.0));
        assert_eq!(pool.idle(), 0);
        drop(b);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn lease_resizes_to_requested_length() {
        let pool = ScratchPool::new();
        drop(pool.lease(8));
        let big = pool.lease(32);
        assert_eq!(big.len(), 32);
        drop(big);
        let small = pool.lease_zeroed(4);
        assert_eq!(small.len(), 4);
    }

    #[test]
    fn concurrent_leases_get_distinct_buffers() {
        let pool = ScratchPool::new();
        let mut a = pool.lease_zeroed(8);
        let mut b = pool.lease_zeroed(8);
        a[0] = Complex64::new(1.0, 0.0);
        b[0] = Complex64::new(2.0, 0.0);
        assert_eq!(a[0].re, 1.0);
        assert_eq!(b[0].re, 2.0);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }
}
