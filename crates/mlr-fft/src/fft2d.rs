//! Two-dimensional and batched FFTs.
//!
//! `F_2D` in the paper is a per-projection 2-D FFT over the detector plane
//! (`h × w`), applied independently to every projection angle. The batched
//! form is therefore the hot path: a 3-D array of shape `(nθ, h, w)` is
//! transformed plane by plane. Planes are independent, so the batch runs
//! under rayon — this is the CPU stand-in for the paper's GPU execution; the
//! simulated GPU timing lives in `mlr-sim`.

use crate::fft::{Direction, FftPlan, FftPlanner};
use crate::scratch::ScratchPool;
use mlr_math::{Array3, Complex64, Shape3};
use rayon::prelude::*;

/// In-place 2-D FFT of a row-major `rows × cols` plane.
pub fn fft2_inplace(data: &mut [Complex64], rows: usize, cols: usize, dir: Direction) {
    assert_eq!(data.len(), rows * cols, "fft2 length mismatch");
    let row_plan = FftPlan::new(cols.max(1));
    let col_plan = FftPlan::new(rows.max(1));
    // Transform rows.
    for r in 0..rows {
        row_plan.process(&mut data[r * cols..(r + 1) * cols], dir);
    }
    // Transform columns through a scratch buffer.
    let mut col = vec![Complex64::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        col_plan.process(&mut col, dir);
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
}

/// In-place inverse 2-D FFT (normalised by `1/(rows·cols)`).
pub fn ifft2_inplace(data: &mut [Complex64], rows: usize, cols: usize) {
    fft2_inplace(data, rows, cols, Direction::Inverse);
}

/// A reusable batched 2-D FFT over the planes of a 3-D array.
///
/// The plan caches the row/column twiddle tables once, then transforms every
/// `(axis-0) plane` of the input in parallel.
pub struct Fft2Batch {
    rows: usize,
    cols: usize,
    row_plan: std::sync::Arc<FftPlan>,
    col_plan: std::sync::Arc<FftPlan>,
    /// Pooled per-plane column buffers: one lease per concurrent plane
    /// worker, so the batch stops allocating once the pool is warm.
    col_scratch: ScratchPool,
}

impl Fft2Batch {
    /// Creates a batch plan for planes of `rows × cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        let planner = FftPlanner::new();
        Self {
            rows,
            cols,
            row_plan: planner.plan(cols.max(1)),
            col_plan: planner.plan(rows.max(1)),
            col_scratch: ScratchPool::new(),
        }
    }

    /// Plane dimensions `(rows, cols)`.
    pub fn plane_dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Transforms every axis-0 plane of `volume` in place, in parallel.
    ///
    /// # Panics
    /// Panics when the volume's plane dimensions do not match the plan.
    pub fn process_volume(&self, volume: &mut Array3<Complex64>, dir: Direction) {
        let shape = volume.shape();
        assert_eq!(shape.n1, self.rows, "plane row mismatch");
        assert_eq!(shape.n2, self.cols, "plane col mismatch");
        let plane_len = self.rows * self.cols;
        volume
            .as_mut_slice()
            .par_chunks_mut(plane_len)
            .for_each(|plane| self.process_plane(plane, dir));
    }

    /// Transforms a single row-major plane in place.
    pub fn process_plane(&self, plane: &mut [Complex64], dir: Direction) {
        assert_eq!(plane.len(), self.rows * self.cols, "plane length mismatch");
        for r in 0..self.rows {
            self.row_plan
                .process(&mut plane[r * self.cols..(r + 1) * self.cols], dir);
        }
        let mut col = self.col_scratch.lease(self.rows);
        for c in 0..self.cols {
            for r in 0..self.rows {
                col[r] = plane[r * self.cols + c];
            }
            self.col_plan.process(&mut col, dir);
            for r in 0..self.rows {
                plane[r * self.cols + c] = col[r];
            }
        }
    }

    /// Out-of-place convenience: returns the transformed copy of `volume`.
    pub fn transform_volume(
        &self,
        volume: &Array3<Complex64>,
        dir: Direction,
    ) -> Array3<Complex64> {
        let mut out = volume.clone();
        self.process_volume(&mut out, dir);
        out
    }
}

/// Converts a real 3-D array to complex (imaginary part zero).
pub fn to_complex(volume: &Array3<f64>) -> Array3<Complex64> {
    let data = volume
        .as_slice()
        .iter()
        .map(|&x| Complex64::from_real(x))
        .collect();
    Array3::from_vec(volume.shape(), data)
}

/// Extracts the real part of a complex 3-D array.
pub fn to_real(volume: &Array3<Complex64>) -> Array3<f64> {
    let data = volume.as_slice().iter().map(|z| z.re).collect();
    Array3::from_vec(volume.shape(), data)
}

/// Creates a complex volume of the given shape filled with zeros.
pub fn zeros_complex(shape: Shape3) -> Array3<Complex64> {
    Array3::zeros(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;
    use mlr_math::norms::max_abs_diff_c;
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_plane(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = seeded(seed);
        (0..rows * cols)
            .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect()
    }

    /// Naive 2-D DFT for ground truth.
    fn dft2_naive(data: &[Complex64], rows: usize, cols: usize, dir: Direction) -> Vec<Complex64> {
        // Row pass.
        let mut tmp = vec![Complex64::ZERO; rows * cols];
        for r in 0..rows {
            let row = dft_naive(&data[r * cols..(r + 1) * cols], dir);
            tmp[r * cols..(r + 1) * cols].copy_from_slice(&row);
        }
        // Column pass.
        let mut out = vec![Complex64::ZERO; rows * cols];
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| tmp[r * cols + c]).collect();
            let t = dft_naive(&col, dir);
            for r in 0..rows {
                out[r * cols + c] = t[r];
            }
        }
        out
    }

    #[test]
    fn fft2_matches_naive() {
        for (rows, cols) in [(4, 4), (8, 16), (6, 10), (5, 7)] {
            let data = random_plane(rows, cols, (rows * 31 + cols) as u64);
            let mut fast = data.clone();
            fft2_inplace(&mut fast, rows, cols, Direction::Forward);
            let slow = dft2_naive(&data, rows, cols, Direction::Forward);
            assert!(max_abs_diff_c(&fast, &slow) < 1e-8, "{rows}x{cols}");
        }
    }

    #[test]
    fn fft2_roundtrip() {
        let (rows, cols) = (16, 12);
        let data = random_plane(rows, cols, 3);
        let mut buf = data.clone();
        fft2_inplace(&mut buf, rows, cols, Direction::Forward);
        ifft2_inplace(&mut buf, rows, cols);
        assert!(max_abs_diff_c(&buf, &data) < 1e-9);
    }

    #[test]
    fn batch_matches_per_plane() {
        let shape = Shape3::new(5, 8, 8);
        let mut rng = seeded(17);
        let data: Vec<Complex64> = (0..shape.len())
            .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let volume = Array3::from_vec(shape, data);

        let batch = Fft2Batch::new(8, 8);
        let transformed = batch.transform_volume(&volume, Direction::Forward);

        for p in 0..shape.n0 {
            let mut plane = volume.plane(p).to_vec();
            fft2_inplace(&mut plane, 8, 8, Direction::Forward);
            assert!(
                max_abs_diff_c(&plane, transformed.plane(p)) < 1e-10,
                "plane {p}"
            );
        }
    }

    #[test]
    fn batch_roundtrip_volume() {
        let shape = Shape3::new(3, 4, 6);
        let mut rng = seeded(23);
        let data: Vec<Complex64> = (0..shape.len())
            .map(|_| Complex64::new(rng.gen(), rng.gen()))
            .collect();
        let volume = Array3::from_vec(shape, data);
        let batch = Fft2Batch::new(4, 6);
        let fwd = batch.transform_volume(&volume, Direction::Forward);
        let back = batch.transform_volume(&fwd, Direction::Inverse);
        assert!(max_abs_diff_c(back.as_slice(), volume.as_slice()) < 1e-9);
    }

    #[test]
    fn real_complex_conversions() {
        let shape = Shape3::cube(3);
        let real = Array3::from_vec(shape, (0..27).map(|i| i as f64).collect());
        let c = to_complex(&real);
        assert_eq!(c[(1, 1, 1)], Complex64::from_real(13.0));
        let back = to_real(&c);
        assert_eq!(back, real);
    }

    #[test]
    #[should_panic(expected = "plane row mismatch")]
    fn batch_shape_mismatch_panics() {
        let batch = Fft2Batch::new(4, 4);
        let mut volume: Array3<Complex64> = Array3::zeros(Shape3::new(2, 8, 4));
        batch.process_volume(&mut volume, Direction::Forward);
    }
}
