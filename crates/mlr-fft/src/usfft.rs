//! Unequally-spaced FFT (USFFT / NUFFT) in one and two dimensions.
//!
//! The laminography operators `F_u1D` and `F_u2D` evaluate discrete Fourier
//! sums at frequencies that are **not** on the uniform grid — the tilted
//! acquisition geometry places the Fourier-slice planes obliquely in the 3-D
//! spectrum. The classical fast algorithm (Dutt & Rokhlin 1993;
//! Greengard & Lee 2004) is used here:
//!
//! 1. pre-compensate the uniform samples by the inverse Fourier transform of
//!    a Gaussian spreading kernel,
//! 2. evaluate an oversampled uniform FFT (zero-padded fine grid),
//! 3. interpolate to each non-uniform frequency with the Gaussian kernel.
//!
//! The adjoint is implemented as the **exact transpose** of the forward
//! linear map (spread → unscaled inverse FFT → compensate), so the pair
//! satisfies `⟨F x, y⟩ = ⟨x, F* y⟩` to machine precision — a property the
//! conjugate-gradient iterations inside ADMM rely on. Accuracy against the
//! direct (naive) non-uniform sum is ~1e-9 with the default parameters
//! (oversampling 2, kernel half-width 10).

use crate::fft::{Direction, FftPlan};
use crate::scratch::{ScratchLease, ScratchPool};
use mlr_math::Complex64;
use rayon::prelude::*;
use std::f64::consts::PI;
use std::sync::Arc;

/// Default oversampling ratio of the fine grid.
pub const DEFAULT_OVERSAMPLING: usize = 2;
/// Default kernel half-width in fine-grid cells.
pub const DEFAULT_HALF_WIDTH: usize = 10;

/// Computes the Gaussian variance parameter `sigma` for a transform of size
/// `n`, oversampling ratio `r` and kernel half-width `m_sp`, following
/// Greengard & Lee with the frequency variable expressed in cycles/sample.
fn gaussian_sigma(n: usize, r: usize, m_sp: usize) -> f64 {
    let rf = r as f64;
    m_sp as f64 / (4.0 * PI * (n as f64) * (n as f64) * rf * (rf - 0.5))
}

/// One-dimensional unequally-spaced FFT.
///
/// Maps `n` uniform samples (centered integer indices `p = -n/2 .. n/2-1`)
/// to values of the Fourier sum `Σ_p u[p]·exp(-2πi·ω·p)` at a fixed list of
/// non-uniform frequencies `ω ∈ [-0.5, 0.5)` (cycles per sample).
pub struct Usfft1d {
    n: usize,
    nr: usize,
    m_sp: usize,
    sigma: f64,
    freqs: Vec<f64>,
    deconv: Vec<f64>,
    scale: f64,
    plan: Arc<FftPlan>,
    /// Pooled fine-grid buffers (length `nr`): forward/adjoint transforms
    /// stop allocating their spreading grid once the pool is warm.
    fine_pool: ScratchPool,
}

impl Usfft1d {
    /// Creates a transform for `n` uniform samples evaluated at the given
    /// non-uniform frequencies (cycles/sample, any values — they are wrapped
    /// periodically onto `[-0.5, 0.5)`).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, freqs: Vec<f64>) -> Self {
        Self::with_params(n, freqs, DEFAULT_OVERSAMPLING, DEFAULT_HALF_WIDTH)
    }

    /// Creates a transform with explicit oversampling and kernel half-width.
    ///
    /// # Panics
    /// Panics when `n == 0`, `oversampling < 2`, or `half_width == 0`.
    pub fn with_params(n: usize, freqs: Vec<f64>, oversampling: usize, half_width: usize) -> Self {
        assert!(n > 0, "USFFT size must be positive");
        assert!(oversampling >= 2, "oversampling must be >= 2");
        assert!(half_width > 0, "kernel half-width must be positive");
        let nr = (n * oversampling).next_power_of_two();
        let sigma = gaussian_sigma(n, oversampling, half_width);
        let deconv: Vec<f64> = (0..n)
            .map(|j| {
                let p = j as f64 - (n / 2) as f64;
                (4.0 * PI * PI * sigma * p * p).exp()
            })
            .collect();
        let scale = 1.0 / (nr as f64 * (4.0 * PI * sigma).sqrt());
        Self {
            n,
            nr,
            m_sp: half_width,
            sigma,
            freqs,
            deconv,
            scale,
            plan: Arc::new(FftPlan::new(nr)),
            fine_pool: ScratchPool::new(),
        }
    }

    /// Number of uniform input samples.
    pub fn input_len(&self) -> usize {
        self.n
    }

    /// Number of non-uniform output frequencies.
    pub fn output_len(&self) -> usize {
        self.freqs.len()
    }

    /// The non-uniform frequencies this transform evaluates.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    #[inline]
    fn kernel(&self, dist_cells: f64) -> f64 {
        let d = dist_cells / self.nr as f64;
        (-(d * d) / (4.0 * self.sigma)).exp()
    }

    /// Forward transform: `out[k] = Σ_p u[p]·exp(-2πi·ω_k·p)`.
    ///
    /// # Panics
    /// Panics when `u.len() != self.input_len()`.
    pub fn forward(&self, u: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(u.len(), self.n, "USFFT input length mismatch");
        // 1. Pre-compensate and place on the fine grid at (p mod nr). The
        //    grid is pooled scratch — no allocation in steady state.
        let mut fine = self.fine_pool.lease_zeroed(self.nr);
        let half = (self.n / 2) as isize;
        for (j, &val) in u.iter().enumerate() {
            let p = j as isize - half;
            let idx = p.rem_euclid(self.nr as isize) as usize;
            fine[idx] = val.scale(self.deconv[j]);
        }
        // 2. Oversampled FFT: fine[q] = Σ_p v[p]·exp(-2πi·q·p/nr).
        self.plan.process(&mut fine, Direction::Forward);
        // 3. Interpolate to each non-uniform frequency.
        self.interpolate(&fine)
    }

    fn interpolate(&self, fine: &[Complex64]) -> Vec<Complex64> {
        let nr = self.nr as isize;
        let m_sp = self.m_sp as isize;
        self.freqs
            .iter()
            .map(|&w| {
                let center = wrap_unit(w) * self.nr as f64;
                let q0 = center.round() as isize;
                let mut acc = Complex64::ZERO;
                for l in -m_sp..=m_sp {
                    let q = q0 + l;
                    let weight = self.kernel(center - q as f64);
                    let idx = q.rem_euclid(nr) as usize;
                    acc += fine[idx].scale(weight);
                }
                acc.scale(self.scale)
            })
            .collect()
    }

    /// Adjoint transform: `out[p] = Σ_k y[k]·exp(+2πi·ω_k·p)`, implemented as
    /// the exact transpose of [`Self::forward`].
    ///
    /// # Panics
    /// Panics when `y.len() != self.output_len()`.
    pub fn adjoint(&self, y: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            y.len(),
            self.freqs.len(),
            "USFFT adjoint input length mismatch"
        );
        let nr = self.nr as isize;
        let m_sp = self.m_sp as isize;
        // 1. Spread each non-uniform value onto the fine grid (transpose of
        //    the interpolation step). Pooled scratch, as in `forward`.
        let mut fine = self.fine_pool.lease_zeroed(self.nr);
        for (k, &val) in y.iter().enumerate() {
            let center = wrap_unit(self.freqs[k]) * self.nr as f64;
            let q0 = center.round() as isize;
            let scaled = val.scale(self.scale);
            for l in -m_sp..=m_sp {
                let q = q0 + l;
                let weight = self.kernel(center - q as f64);
                let idx = q.rem_euclid(nr) as usize;
                fine[idx] += scaled.scale(weight);
            }
        }
        // 2. Conjugate-transpose of the forward FFT = unscaled inverse FFT.
        self.plan.process_unscaled(&mut fine, Direction::Inverse);
        // 3. Transpose of placement + compensation.
        let half = (self.n / 2) as isize;
        (0..self.n)
            .map(|j| {
                let p = j as isize - half;
                let idx = p.rem_euclid(nr) as usize;
                fine[idx].scale(self.deconv[j])
            })
            .collect()
    }

    /// Naive `O(n·m)` evaluation of the forward transform (ground truth for
    /// tests and for the small exact paths in examples).
    pub fn forward_naive(&self, u: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(u.len(), self.n, "USFFT input length mismatch");
        let half = (self.n / 2) as isize;
        self.freqs
            .iter()
            .map(|&w| {
                let mut acc = Complex64::ZERO;
                for (j, &val) in u.iter().enumerate() {
                    let p = (j as isize - half) as f64;
                    acc += val * Complex64::cis(-2.0 * PI * w * p);
                }
                acc
            })
            .collect()
    }

    /// Naive `O(n·m)` evaluation of the adjoint transform.
    pub fn adjoint_naive(&self, y: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            y.len(),
            self.freqs.len(),
            "USFFT adjoint input length mismatch"
        );
        let half = (self.n / 2) as isize;
        (0..self.n)
            .map(|j| {
                let p = (j as isize - half) as f64;
                let mut acc = Complex64::ZERO;
                for (k, &val) in y.iter().enumerate() {
                    acc += val * Complex64::cis(2.0 * PI * self.freqs[k] * p);
                }
                acc
            })
            .collect()
    }
}

/// Wraps a frequency onto `[0, 1)` (the fine-grid index space is periodic).
#[inline]
fn wrap_unit(w: f64) -> f64 {
    let r = w.rem_euclid(1.0);
    if r >= 1.0 {
        0.0
    } else {
        r
    }
}

/// Two-dimensional unequally-spaced FFT.
///
/// Maps an `n1 × n2` uniform grid (centered indices) to the Fourier sum
/// `Σ_{p1,p2} u[p1,p2]·exp(-2πi(ω1·p1 + ω2·p2))` evaluated at a list of
/// non-uniform frequency pairs `(ω1, ω2)`.
pub struct Usfft2d {
    n1: usize,
    n2: usize,
    nr1: usize,
    nr2: usize,
    m_sp: usize,
    sigma1: f64,
    sigma2: f64,
    freqs: Vec<(f64, f64)>,
    deconv1: Vec<f64>,
    deconv2: Vec<f64>,
    scale: f64,
    plan1: Arc<FftPlan>,
    plan2: Arc<FftPlan>,
    /// Pooled fine-grid and transpose buffers (length `nr1 * nr2` each):
    /// the per-chunk 2-D transforms stop allocating once the pools warm up.
    fine_pool: ScratchPool,
    transpose_pool: ScratchPool,
}

impl Usfft2d {
    /// Creates a transform for an `n1 × n2` uniform grid evaluated at the
    /// given non-uniform frequency pairs `(ω1, ω2)` in cycles/sample.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(n1: usize, n2: usize, freqs: Vec<(f64, f64)>) -> Self {
        Self::with_params(n1, n2, freqs, DEFAULT_OVERSAMPLING, DEFAULT_HALF_WIDTH)
    }

    /// Creates a transform with explicit oversampling and kernel half-width.
    ///
    /// # Panics
    /// Panics when a dimension is zero, `oversampling < 2`, or `half_width == 0`.
    pub fn with_params(
        n1: usize,
        n2: usize,
        freqs: Vec<(f64, f64)>,
        oversampling: usize,
        half_width: usize,
    ) -> Self {
        assert!(n1 > 0 && n2 > 0, "USFFT2D dimensions must be positive");
        assert!(oversampling >= 2, "oversampling must be >= 2");
        assert!(half_width > 0, "kernel half-width must be positive");
        let nr1 = (n1 * oversampling).next_power_of_two();
        let nr2 = (n2 * oversampling).next_power_of_two();
        let sigma1 = gaussian_sigma(n1, oversampling, half_width);
        let sigma2 = gaussian_sigma(n2, oversampling, half_width);
        let deconv = |n: usize, sigma: f64| -> Vec<f64> {
            (0..n)
                .map(|j| {
                    let p = j as f64 - (n / 2) as f64;
                    (4.0 * PI * PI * sigma * p * p).exp()
                })
                .collect()
        };
        let scale = 1.0
            / (nr1 as f64 * (4.0 * PI * sigma1).sqrt())
            / (nr2 as f64 * (4.0 * PI * sigma2).sqrt());
        Self {
            n1,
            n2,
            nr1,
            nr2,
            m_sp: half_width,
            sigma1,
            sigma2,
            freqs,
            deconv1: deconv(n1, sigma1),
            deconv2: deconv(n2, sigma2),
            scale,
            plan1: Arc::new(FftPlan::new(nr1)),
            plan2: Arc::new(FftPlan::new(nr2)),
            fine_pool: ScratchPool::new(),
            transpose_pool: ScratchPool::new(),
        }
    }

    /// Uniform grid dimensions `(n1, n2)`.
    pub fn input_dims(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Number of non-uniform output frequencies.
    pub fn output_len(&self) -> usize {
        self.freqs.len()
    }

    /// The non-uniform frequency pairs this transform evaluates.
    pub fn freqs(&self) -> &[(f64, f64)] {
        &self.freqs
    }

    #[inline]
    fn kernel1(&self, dist_cells: f64) -> f64 {
        let d = dist_cells / self.nr1 as f64;
        (-(d * d) / (4.0 * self.sigma1)).exp()
    }

    #[inline]
    fn kernel2(&self, dist_cells: f64) -> f64 {
        let d = dist_cells / self.nr2 as f64;
        (-(d * d) / (4.0 * self.sigma2)).exp()
    }

    /// Builds the pre-compensated, zero-embedded fine grid and transforms it.
    fn fine_forward(&self, u: &[Complex64]) -> ScratchLease<'_> {
        let mut fine = self.fine_pool.lease_zeroed(self.nr1 * self.nr2);
        let half1 = (self.n1 / 2) as isize;
        let half2 = (self.n2 / 2) as isize;
        for j1 in 0..self.n1 {
            let p1 = j1 as isize - half1;
            let r1 = p1.rem_euclid(self.nr1 as isize) as usize;
            for j2 in 0..self.n2 {
                let p2 = j2 as isize - half2;
                let r2 = p2.rem_euclid(self.nr2 as isize) as usize;
                fine[r1 * self.nr2 + r2] =
                    u[j1 * self.n2 + j2].scale(self.deconv1[j1] * self.deconv2[j2]);
            }
        }
        self.fft_fine(&mut fine, Direction::Forward, true);
        fine
    }

    /// Row–column transform of the fine grid. `scaled` selects the normalised
    /// inverse (not used here) vs. the unscaled conjugate transpose.
    fn fft_fine(&self, fine: &mut [Complex64], dir: Direction, scaled: bool) {
        // Rows (length nr2), parallel over rows.
        fine.par_chunks_mut(self.nr2).for_each(|row| {
            if scaled {
                self.plan2.process(row, dir);
            } else {
                self.plan2.process_unscaled(row, dir);
            }
        });
        // Columns (length nr1), via a pooled transpose buffer (every element
        // is overwritten, so the lease needs no zeroing).
        let nr1 = self.nr1;
        let nr2 = self.nr2;
        let mut transposed = self.transpose_pool.lease(nr1 * nr2);
        for r in 0..nr1 {
            for c in 0..nr2 {
                transposed[c * nr1 + r] = fine[r * nr2 + c];
            }
        }
        transposed.par_chunks_mut(nr1).for_each(|col| {
            if scaled {
                self.plan1.process(col, dir);
            } else {
                self.plan1.process_unscaled(col, dir);
            }
        });
        for c in 0..nr2 {
            for r in 0..nr1 {
                fine[r * nr2 + c] = transposed[c * nr1 + r];
            }
        }
    }

    /// Forward transform of a row-major `n1 × n2` grid.
    ///
    /// # Panics
    /// Panics when `u.len() != n1 * n2`.
    pub fn forward(&self, u: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(u.len(), self.n1 * self.n2, "USFFT2D input length mismatch");
        let fine = self.fine_forward(u);
        let m_sp = self.m_sp as isize;
        let nr1 = self.nr1 as isize;
        let nr2 = self.nr2 as isize;
        self.freqs
            .par_iter()
            .map(|&(w1, w2)| {
                let c1 = wrap_unit(w1) * self.nr1 as f64;
                let c2 = wrap_unit(w2) * self.nr2 as f64;
                let q1 = c1.round() as isize;
                let q2 = c2.round() as isize;
                let mut acc = Complex64::ZERO;
                for l1 in -m_sp..=m_sp {
                    let k1 = self.kernel1(c1 - (q1 + l1) as f64);
                    let i1 = (q1 + l1).rem_euclid(nr1) as usize;
                    for l2 in -m_sp..=m_sp {
                        let k2 = self.kernel2(c2 - (q2 + l2) as f64);
                        let i2 = (q2 + l2).rem_euclid(nr2) as usize;
                        acc += fine[i1 * self.nr2 + i2].scale(k1 * k2);
                    }
                }
                acc.scale(self.scale)
            })
            .collect()
    }

    /// Adjoint transform: `out[p1,p2] = Σ_k y[k]·exp(+2πi(ω1_k·p1 + ω2_k·p2))`,
    /// implemented as the exact transpose of [`Self::forward`].
    ///
    /// # Panics
    /// Panics when `y.len() != self.output_len()`.
    pub fn adjoint(&self, y: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            y.len(),
            self.freqs.len(),
            "USFFT2D adjoint input length mismatch"
        );
        let m_sp = self.m_sp as isize;
        let nr1 = self.nr1 as isize;
        let nr2 = self.nr2 as isize;
        let mut fine = self.fine_pool.lease_zeroed(self.nr1 * self.nr2);
        for (k, &val) in y.iter().enumerate() {
            let (w1, w2) = self.freqs[k];
            let c1 = wrap_unit(w1) * self.nr1 as f64;
            let c2 = wrap_unit(w2) * self.nr2 as f64;
            let q1 = c1.round() as isize;
            let q2 = c2.round() as isize;
            let scaled = val.scale(self.scale);
            for l1 in -m_sp..=m_sp {
                let k1 = self.kernel1(c1 - (q1 + l1) as f64);
                let i1 = (q1 + l1).rem_euclid(nr1) as usize;
                for l2 in -m_sp..=m_sp {
                    let k2 = self.kernel2(c2 - (q2 + l2) as f64);
                    let i2 = (q2 + l2).rem_euclid(nr2) as usize;
                    fine[i1 * self.nr2 + i2] += scaled.scale(k1 * k2);
                }
            }
        }
        self.fft_fine(&mut fine, Direction::Inverse, false);
        let half1 = (self.n1 / 2) as isize;
        let half2 = (self.n2 / 2) as isize;
        let mut out = vec![Complex64::ZERO; self.n1 * self.n2];
        for j1 in 0..self.n1 {
            let p1 = j1 as isize - half1;
            let r1 = p1.rem_euclid(nr1) as usize;
            for j2 in 0..self.n2 {
                let p2 = j2 as isize - half2;
                let r2 = p2.rem_euclid(nr2) as usize;
                out[j1 * self.n2 + j2] =
                    fine[r1 * self.nr2 + r2].scale(self.deconv1[j1] * self.deconv2[j2]);
            }
        }
        out
    }

    /// Naive `O(n1·n2·m)` forward evaluation (ground truth for tests).
    pub fn forward_naive(&self, u: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(u.len(), self.n1 * self.n2, "USFFT2D input length mismatch");
        let half1 = (self.n1 / 2) as isize;
        let half2 = (self.n2 / 2) as isize;
        self.freqs
            .iter()
            .map(|&(w1, w2)| {
                let mut acc = Complex64::ZERO;
                for j1 in 0..self.n1 {
                    let p1 = (j1 as isize - half1) as f64;
                    for j2 in 0..self.n2 {
                        let p2 = (j2 as isize - half2) as f64;
                        acc +=
                            u[j1 * self.n2 + j2] * Complex64::cis(-2.0 * PI * (w1 * p1 + w2 * p2));
                    }
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::norms::{l2_norm_c, max_abs_diff_c};
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_c(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect()
    }

    fn random_freqs(m: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        (0..m).map(|_| rng.gen::<f64>() - 0.5).collect()
    }

    #[test]
    fn usfft1d_matches_naive_forward() {
        let n = 32;
        let m = 45;
        let u = random_c(n, 1);
        let t = Usfft1d::new(n, random_freqs(m, 2));
        let fast = t.forward(&u);
        let slow = t.forward_naive(&u);
        let err = max_abs_diff_c(&fast, &slow) / l2_norm_c(&slow) * (m as f64).sqrt();
        assert!(err < 1e-5, "relative error {err}");
    }

    #[test]
    fn usfft1d_uniform_freqs_match_fft() {
        // When the "non-uniform" frequencies are exactly the uniform grid
        // k/n, the USFFT must agree with a centered DFT.
        let n = 16;
        let freqs: Vec<f64> = (0..n)
            .map(|k| (k as f64 - (n / 2) as f64) / n as f64)
            .collect();
        let u = random_c(n, 3);
        let t = Usfft1d::new(n, freqs.clone());
        let fast = t.forward(&u);
        let slow = t.forward_naive(&u);
        assert!(max_abs_diff_c(&fast, &slow) < 1e-8);
    }

    #[test]
    fn usfft1d_adjoint_matches_naive() {
        let n = 24;
        let m = 31;
        let t = Usfft1d::new(n, random_freqs(m, 5));
        let y = random_c(m, 6);
        let fast = t.adjoint(&y);
        let slow = t.adjoint_naive(&y);
        let err = max_abs_diff_c(&fast, &slow) / l2_norm_c(&slow) * (n as f64).sqrt();
        assert!(err < 1e-5, "relative error {err}");
    }

    #[test]
    fn usfft1d_exact_adjointness() {
        // <F x, y> == <x, F* y> holds to machine precision because the
        // adjoint is the literal transpose of the forward map.
        let n = 40;
        let m = 27;
        let t = Usfft1d::new(n, random_freqs(m, 7));
        let x = random_c(n, 8);
        let y = random_c(m, 9);
        let fx = t.forward(&x);
        let fty = t.adjoint(&y);
        let lhs: Complex64 = fx.iter().zip(&y).map(|(a, b)| *a * b.conj()).sum();
        let rhs: Complex64 = x.iter().zip(&fty).map(|(a, b)| *a * b.conj()).sum();
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn usfft1d_frequency_wrapping() {
        // Frequencies outside [-0.5, 0.5) are periodic aliases.
        let n = 16;
        let u = random_c(n, 10);
        let t1 = Usfft1d::new(n, vec![0.3]);
        let t2 = Usfft1d::new(n, vec![0.3 - 1.0]);
        let a = t1.forward(&u);
        let b = t2.forward(&u);
        assert!((a[0] - b[0]).abs() < 1e-8);
    }

    #[test]
    fn usfft1d_empty_freqs() {
        let t = Usfft1d::new(8, vec![]);
        assert_eq!(t.output_len(), 0);
        let out = t.forward(&random_c(8, 11));
        assert!(out.is_empty());
        let back = t.adjoint(&[]);
        assert_eq!(back.len(), 8);
        assert!(back.iter().all(|z| z.abs() == 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn usfft1d_wrong_input_length_panics() {
        let t = Usfft1d::new(8, vec![0.1]);
        let _ = t.forward(&random_c(4, 12));
    }

    #[test]
    fn usfft2d_matches_naive_forward() {
        let (n1, n2) = (12, 16);
        let m = 40;
        let mut rng = seeded(13);
        let freqs: Vec<(f64, f64)> = (0..m)
            .map(|_| (rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let u = random_c(n1 * n2, 14);
        let t = Usfft2d::new(n1, n2, freqs);
        let fast = t.forward(&u);
        let slow = t.forward_naive(&u);
        let err = max_abs_diff_c(&fast, &slow) / l2_norm_c(&slow) * (m as f64).sqrt();
        assert!(err < 1e-5, "relative error {err}");
    }

    #[test]
    fn usfft2d_exact_adjointness() {
        let (n1, n2) = (10, 14);
        let m = 25;
        let mut rng = seeded(15);
        let freqs: Vec<(f64, f64)> = (0..m)
            .map(|_| (rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let t = Usfft2d::new(n1, n2, freqs);
        let x = random_c(n1 * n2, 16);
        let y = random_c(m, 17);
        let fx = t.forward(&x);
        let fty = t.adjoint(&y);
        let lhs: Complex64 = fx.iter().zip(&y).map(|(a, b)| *a * b.conj()).sum();
        let rhs: Complex64 = x.iter().zip(&fty).map(|(a, b)| *a * b.conj()).sum();
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn usfft2d_dims_accessors() {
        let t = Usfft2d::new(8, 6, vec![(0.0, 0.0), (0.1, -0.2)]);
        assert_eq!(t.input_dims(), (8, 6));
        assert_eq!(t.output_len(), 2);
        assert_eq!(t.freqs().len(), 2);
    }

    #[test]
    fn usfft2d_dc_frequency_is_sum() {
        let (n1, n2) = (8, 8);
        let u = random_c(n1 * n2, 18);
        let t = Usfft2d::new(n1, n2, vec![(0.0, 0.0)]);
        let out = t.forward(&u);
        let total: Complex64 = u.iter().copied().sum();
        assert!((out[0] - total).abs() < 1e-8 * total.abs().max(1.0));
    }
}
