//! One-dimensional complex FFT.
//!
//! The implementation is an iterative radix-2 Cooley–Tukey transform with a
//! bit-reversal permutation and precomputed twiddle factors, plus a Bluestein
//! (chirp-z) fallback so arbitrary lengths — including the odd projection
//! counts real laminography scans produce — are supported. Plans are created
//! by [`FftPlanner`], which caches twiddle tables per length so repeated
//! transforms of the same size (the common case: every chunk has the same
//! shape) pay the setup cost once.

use crate::scratch::ScratchPool;
use mlr_math::Complex64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::Arc;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward transform, kernel `exp(-2πi kn/N)`.
    Forward,
    /// Inverse transform, kernel `exp(+2πi kn/N)`, scaled by `1/N`.
    Inverse,
}

impl Direction {
    /// Sign of the exponent for this direction.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A reusable FFT plan for a fixed length.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// Twiddles for the radix-2 path (only populated for power-of-two n).
    twiddles_fwd: Vec<Complex64>,
    twiddles_inv: Vec<Complex64>,
    /// Bluestein auxiliary tables (only populated for non-power-of-two n).
    bluestein: Option<BluesteinTables>,
}

#[derive(Debug)]
struct BluesteinTables {
    /// Padded power-of-two length m >= 2n-1.
    m: usize,
    /// Chirp sequence a_n = exp(-i π n² / N) for the forward direction.
    chirp: Vec<Complex64>,
    /// FFT of the zero-padded reciprocal chirp (forward direction).
    b_hat_fwd: Vec<Complex64>,
    /// FFT of the zero-padded reciprocal chirp (inverse direction).
    b_hat_inv: Vec<Complex64>,
    /// Inner power-of-two plan for length m.
    inner: Box<FftPlan>,
    /// Reusable length-`m` chirp-product buffers, one per concurrent caller
    /// — the transform stops allocating once the pool is warm.
    scratch: ScratchPool,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        if n.is_power_of_two() {
            let half = n / 2;
            let mut twiddles_fwd = Vec::with_capacity(half.max(1));
            let mut twiddles_inv = Vec::with_capacity(half.max(1));
            for k in 0..half.max(1) {
                let theta = 2.0 * PI * k as f64 / n as f64;
                twiddles_fwd.push(Complex64::cis(-theta));
                twiddles_inv.push(Complex64::cis(theta));
            }
            Self {
                n,
                twiddles_fwd,
                twiddles_inv,
                bluestein: None,
            }
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let mut chirp = Vec::with_capacity(n);
            for i in 0..n {
                // Use i² mod 2n to avoid precision loss for large i.
                let idx = (i * i) % (2 * n);
                chirp.push(Complex64::cis(-PI * idx as f64 / n as f64));
            }
            let inner = Box::new(FftPlan::new(m));
            let build_bhat = |conj_chirp: bool| -> Vec<Complex64> {
                let mut b = vec![Complex64::ZERO; m];
                for i in 0..n {
                    let c = if conj_chirp {
                        chirp[i].conj()
                    } else {
                        chirp[i]
                    };
                    b[i] = c;
                    if i != 0 {
                        b[m - i] = c;
                    }
                }
                let mut b_hat = b;
                inner.process(&mut b_hat, Direction::Forward);
                b_hat
            };
            // Forward Bluestein uses conj(chirp) for b; the inverse direction
            // is implemented by conjugation at the call site, so both tables
            // share the same inner transform but differ in chirp sign.
            let b_hat_fwd = build_bhat(true);
            let b_hat_inv = {
                let mut b = vec![Complex64::ZERO; m];
                for i in 0..n {
                    let c = chirp[i]; // conj of the inverse-direction chirp
                    b[i] = c;
                    if i != 0 {
                        b[m - i] = c;
                    }
                }
                let mut b_hat = b;
                inner.process(&mut b_hat, Direction::Forward);
                b_hat
            };
            Self {
                n,
                twiddles_fwd: Vec::new(),
                twiddles_inv: Vec::new(),
                bluestein: Some(BluesteinTables {
                    m,
                    chirp,
                    b_hat_fwd,
                    b_hat_inv,
                    inner,
                    scratch: ScratchPool::new(),
                }),
            }
        }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-0 plan (never constructed).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Executes the transform in place.
    ///
    /// # Panics
    /// Panics when `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        if self.n == 1 {
            return;
        }
        if self.bluestein.is_none() {
            self.radix2(data, dir);
            if dir == Direction::Inverse {
                let scale = 1.0 / self.n as f64;
                for v in data.iter_mut() {
                    *v = v.scale(scale);
                }
            }
        } else {
            self.bluestein_transform(data, dir);
        }
    }

    /// Executes the transform without the `1/N` normalisation on the inverse
    /// direction. Useful for adjoint (rather than inverse) operators, where
    /// the unscaled conjugate-kernel sum is wanted.
    pub fn process_unscaled(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        if self.n == 1 {
            return;
        }
        if self.bluestein.is_none() {
            self.radix2(data, dir);
        } else {
            self.bluestein_transform(data, dir);
            if dir == Direction::Inverse {
                // bluestein_transform already applies 1/N on inverse; undo it.
                let scale = self.n as f64;
                for v in data.iter_mut() {
                    *v = v.scale(scale);
                }
            }
        }
    }

    fn radix2(&self, data: &mut [Complex64], dir: Direction) {
        let n = self.n;
        // Bit-reversal permutation.
        let mut j = 0usize;
        for i in 0..n {
            if i < j {
                data.swap(i, j);
            }
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
        }
        let twiddles = match dir {
            Direction::Forward => &self.twiddles_fwd,
            Direction::Inverse => &self.twiddles_inv,
        };
        let mut len = 2usize;
        while len <= n {
            let step = n / len;
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = twiddles[k * step];
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }

    fn bluestein_transform(&self, data: &mut [Complex64], dir: Direction) {
        let tables = self.bluestein.as_ref().expect("bluestein tables"); // mlr-check: allow(unwrap-expect) — invariant: new() builds Bluestein tables for every non-power-of-two size
        let n = self.n;
        let m = tables.m;
        // a_i = x_i * chirp_i (chirp conjugated for the inverse direction).
        // The zero-padded product lives in pooled scratch: steady state
        // performs no allocation per transform.
        let mut a = tables.scratch.lease_zeroed(m);
        for i in 0..n {
            let c = match dir {
                Direction::Forward => tables.chirp[i],
                Direction::Inverse => tables.chirp[i].conj(),
            };
            a[i] = data[i] * c;
        }
        tables.inner.process(&mut a, Direction::Forward);
        let b_hat = match dir {
            Direction::Forward => &tables.b_hat_fwd,
            Direction::Inverse => &tables.b_hat_inv,
        };
        for (x, y) in a.iter_mut().zip(b_hat) {
            *x *= *y;
        }
        tables.inner.process(&mut a, Direction::Inverse);
        for i in 0..n {
            let c = match dir {
                Direction::Forward => tables.chirp[i],
                Direction::Inverse => tables.chirp[i].conj(),
            };
            data[i] = a[i] * c;
        }
        if dir == Direction::Inverse {
            let scale = 1.0 / n as f64;
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }
}

/// A thread-safe cache of [`FftPlan`]s keyed by length.
#[derive(Default)]
pub struct FftPlanner {
    plans: Mutex<HashMap<usize, Arc<FftPlan>>>,
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self {
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the (possibly cached) plan for length `n`.
    pub fn plan(&self, n: usize) -> Arc<FftPlan> {
        let mut guard = self.plans.lock();
        guard
            .entry(n)
            .or_insert_with(|| Arc::new(FftPlan::new(n)))
            .clone()
    }

    /// Number of distinct lengths planned so far.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().len()
    }
}

/// Convenience wrapper: forward FFT of a slice, out of place.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    FftPlan::new(input.len().max(1)).process(&mut data, Direction::Forward);
    data
}

/// Convenience wrapper: inverse FFT of a slice, out of place (normalised).
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    FftPlan::new(input.len().max(1)).process(&mut data, Direction::Inverse);
    data
}

/// Naive O(N²) DFT used as the ground truth by tests.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let theta = dir.sign() * 2.0 * PI * (k * j % n.max(1)) as f64 / n as f64;
            acc += x * Complex64::cis(theta);
        }
        *o = if dir == Direction::Inverse {
            acc.scale(1.0 / n as f64)
        } else {
            acc
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::norms::max_abs_diff_c;
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect()
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        let out = fft(&data);
        for v in out {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        for n in [2usize, 4, 8, 16, 64, 128] {
            let x = random_signal(n, n as u64);
            let fast = fft(&x);
            let slow = dft_naive(&x, Direction::Forward);
            assert!(max_abs_diff_c(&fast, &slow) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_length() {
        for n in [3usize, 5, 6, 7, 12, 15, 17, 31, 100] {
            let x = random_signal(n, 100 + n as u64);
            let fast = fft(&x);
            let slow = dft_naive(&x, Direction::Forward);
            assert!(max_abs_diff_c(&fast, &slow) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [4usize, 9, 16, 21, 128, 250] {
            let x = random_signal(n, 7 * n as u64);
            let back = ifft(&fft(&x));
            assert!(max_abs_diff_c(&back, &x) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 256;
        let x = random_signal(n, 9);
        let x_hat = fft(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ef: f64 = x_hat.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ef).abs() < 1e-9 * ex);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a = random_signal(n, 1);
        let b = random_signal(n, 2);
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expected: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_abs_diff_c(&fsum, &expected) < 1e-10);
    }

    #[test]
    fn unscaled_inverse_is_adjoint() {
        // <F x, y> == <x, F^H y> where F^H is the unscaled inverse kernel.
        let n = 32;
        let x = random_signal(n, 11);
        let y = random_signal(n, 12);
        let plan = FftPlan::new(n);
        let mut fx = x.clone();
        plan.process(&mut fx, Direction::Forward);
        let mut fhy = y.clone();
        plan.process_unscaled(&mut fhy, Direction::Inverse);
        let lhs: Complex64 = fx.iter().zip(&y).map(|(a, b)| *a * b.conj()).sum();
        let rhs: Complex64 = x.iter().zip(&fhy).map(|(a, b)| *a * b.conj()).sum();
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn planner_caches_plans() {
        let planner = FftPlanner::new();
        let p1 = planner.plan(128);
        let p2 = planner.plan(128);
        assert!(Arc::ptr_eq(&p1, &p2));
        let _ = planner.plan(64);
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex64::new(3.0, -2.0)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        plan.process(&mut buf, Direction::Forward);
    }

    #[test]
    fn shift_theorem() {
        // Circularly shifting the input multiplies the spectrum by a phasor.
        let n = 64usize;
        let x = random_signal(n, 21);
        let shift = 5usize;
        let shifted: Vec<Complex64> = (0..n).map(|i| x[(i + n - shift) % n]).collect();
        let fx = fft(&x);
        let fs = fft(&shifted);
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * PI * (k * shift) as f64 / n as f64);
            let expected = fx[k] * phase;
            assert!((fs[k] - expected).abs() < 1e-9);
        }
    }
}
