//! `fftshift` / `ifftshift` / `fftfreq` helpers.
//!
//! The laminography operators express frequencies on centered grids
//! (`k ∈ [-n/2, n/2)`), while the radix-2 FFT produces the standard
//! "DC-first" ordering. These helpers translate between the two layouts for
//! both 1-D lines and 2-D planes.

use mlr_math::Complex64;

/// Returns the centered frequency (in cycles per sample) of each FFT output
/// bin, matching NumPy's `fftfreq(n)` followed by `fftshift`: the result is
/// monotonically increasing from `-0.5` towards `+0.5`.
pub fn fftfreq(n: usize) -> Vec<f64> {
    let half = (n / 2) as isize;
    (0..n as isize)
        .map(|i| (i - half) as f64 / n as f64)
        .collect()
}

/// Circularly rotates a 1-D spectrum so the DC bin moves to the center.
pub fn fftshift_1d<T: Clone>(data: &[T]) -> Vec<T> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let split = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&data[split..]);
    out.extend_from_slice(&data[..split]);
    out
}

/// Inverse of [`fftshift_1d`]: moves the centered DC bin back to index 0.
pub fn ifftshift_1d<T: Clone>(data: &[T]) -> Vec<T> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let split = n / 2;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&data[split..]);
    out.extend_from_slice(&data[..split]);
    out
}

/// 2-D `fftshift` over a row-major `rows × cols` plane.
pub fn fftshift_2d(data: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
    assert_eq!(data.len(), rows * cols, "fftshift_2d length mismatch");
    let row_shifted: Vec<Vec<Complex64>> = (0..rows)
        .map(|r| fftshift_1d(&data[r * cols..(r + 1) * cols]))
        .collect();
    let row_order = fftshift_1d(&(0..rows).collect::<Vec<_>>());
    let mut out = Vec::with_capacity(rows * cols);
    for &r in &row_order {
        out.extend_from_slice(&row_shifted[r]);
    }
    out
}

/// 2-D `ifftshift` over a row-major `rows × cols` plane.
pub fn ifftshift_2d(data: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
    assert_eq!(data.len(), rows * cols, "ifftshift_2d length mismatch");
    let row_shifted: Vec<Vec<Complex64>> = (0..rows)
        .map(|r| ifftshift_1d(&data[r * cols..(r + 1) * cols]))
        .collect();
    let row_order = ifftshift_1d(&(0..rows).collect::<Vec<_>>());
    let mut out = Vec::with_capacity(rows * cols);
    for &r in &row_order {
        out.extend_from_slice(&row_shifted[r]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fftfreq_even_and_odd() {
        let f4 = fftfreq(4);
        assert_eq!(f4, vec![-0.5, -0.25, 0.0, 0.25]);
        let f5 = fftfreq(5);
        assert_eq!(f5.len(), 5);
        assert!((f5[2] - 0.0).abs() < 1e-15);
        assert!(f5.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn shift_roundtrip_even() {
        let v: Vec<i32> = (0..8).collect();
        let s = fftshift_1d(&v);
        assert_eq!(s, vec![4, 5, 6, 7, 0, 1, 2, 3]);
        assert_eq!(ifftshift_1d(&s), v);
    }

    #[test]
    fn shift_roundtrip_odd() {
        let v: Vec<i32> = (0..7).collect();
        let s = fftshift_1d(&v);
        assert_eq!(s, vec![4, 5, 6, 0, 1, 2, 3]);
        assert_eq!(ifftshift_1d(&s), v);
    }

    #[test]
    fn shift_empty() {
        let v: Vec<i32> = Vec::new();
        assert!(fftshift_1d(&v).is_empty());
        assert!(ifftshift_1d(&v).is_empty());
    }

    #[test]
    fn shift_2d_roundtrip() {
        let rows = 3;
        let cols = 4;
        let data: Vec<Complex64> = (0..rows * cols)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let shifted = fftshift_2d(&data, rows, cols);
        let back = ifftshift_2d(&shifted, rows, cols);
        assert_eq!(back, data);
        // DC (index 0) should end up at the center position (row 1, col 2).
        assert_eq!(shifted[cols + 2], data[0]);
    }
}
