//! # mlr-fft
//!
//! From-scratch Fourier-transform substrate for the mLR laminography
//! reconstruction workspace.
//!
//! The paper's laminography operator is `L = F*_2D F_u2D F_u1D` where
//!
//! * `F_2D` — a standard 2-D FFT on equally spaced grids (one per projection
//!   angle),
//! * `F_u1D` — a 1-D Fourier transform evaluated at *unequally spaced*
//!   vertical frequencies (the laminography tilt makes the Fourier-slice
//!   planes oblique),
//! * `F_u2D` — a 2-D Fourier transform evaluated at unequally spaced in-plane
//!   frequencies (one polar line per projection angle).
//!
//! The crate provides all three families plus their adjoints, without any
//! external FFT dependency:
//!
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT with precomputed twiddles
//!   and a Bluestein (chirp-z) fallback for arbitrary lengths.
//! * [`fft2d`] — row–column 2-D FFTs and rayon-parallel batched transforms.
//! * [`shift`] — `fftshift`/`ifftshift`/`fftfreq` helpers.
//! * [`usfft`] — type-2 (uniform → non-uniform) and type-1 (adjoint) USFFT in
//!   one and two dimensions with Gaussian-kernel gridding, following
//!   Dutt & Rokhlin and the `lam_usfft` reference implementation the paper
//!   builds on.
//!
//! Every forward/adjoint pair satisfies the inner-product adjointness test
//! `⟨F x, y⟩ = ⟨x, F* y⟩`, which the laminography ADMM solver relies on for
//! convergence; the test suite checks this explicitly.

pub mod fft;
pub mod fft2d;
pub mod scratch;
pub mod shift;
pub mod usfft;

pub use fft::{Direction, FftPlan, FftPlanner};
pub use fft2d::{fft2_inplace, ifft2_inplace, Fft2Batch};
pub use scratch::{ScratchLease, ScratchPool};
pub use shift::{fftfreq, fftshift_1d, fftshift_2d, ifftshift_1d, ifftshift_2d};
pub use usfft::{Usfft1d, Usfft2d};

/// Number of real floating-point operations a radix-2 FFT of length `n`
/// performs, `~ 5 n log2 n`. Used by the hardware cost model in `mlr-sim` to
/// translate transform sizes into simulated GPU time.
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_model_monotone() {
        assert_eq!(fft_flops(1), 0.0);
        assert!(fft_flops(1024) > fft_flops(512));
        let ratio = fft_flops(2048) / fft_flops(1024);
        assert!(ratio > 2.0 && ratio < 2.3);
    }
}
