//! Fixture: panicking accessors in library code (rule `unwrap-expect`).

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    // A typed error would be the policy-compliant shape here.
    s.parse().expect("not a number")
}
