//! Fixture: both waiver forms, each carrying a justification.

pub fn elapsed_ms(stats: &mut Vec<u128>) {
    // mlr-check: allow(wall-clock) — decoration only: feeds the stats counter
    let start = std::time::Instant::now();
    stats.push(start.elapsed().as_millis());
}

pub fn poke(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap() // mlr-check: allow(unwrap-expect) — fixture for the trailing form
}
