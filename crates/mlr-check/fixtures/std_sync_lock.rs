//! Fixture: std::sync locks bypassing the instrumented shim (rule `std-sync-lock`).

use std::sync::Mutex;

pub struct Registry {
    counts: Mutex<Vec<u32>>,
    gate: std::sync::RwLock<()>,
}
