//! A lib.rs whose only `#![warn(missing_docs)]` mention is inside comments.

// #![warn(missing_docs)] — commented out, so the crate must still be flagged.
pub fn undocumented() {}
