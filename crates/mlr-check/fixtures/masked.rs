//! Fixture: rule tokens inside comments, strings, and test code never fire.
//! For example `Instant::now()` on this line is only prose.

/* block comment: thread::spawn, std::sync::Mutex, .unwrap() */
pub fn describe() -> &'static str {
    "calls Instant::now() and .expect(msg) and std::sync::RwLock"
}

pub fn raw() -> &'static str {
    r#"thread::Builder and SystemTime live in a raw string"#
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper() {
        let t = std::time::Instant::now();
        let _ = t.elapsed().as_nanos().checked_add(1).unwrap();
    }
}
