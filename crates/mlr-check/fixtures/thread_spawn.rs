//! Fixture: ad-hoc thread spawn outside the governor pools (rule `thread-spawn`).

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
