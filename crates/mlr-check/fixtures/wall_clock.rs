//! Fixture: wall-clock reads in a decision path (rule `wall-clock`).

pub fn decide() -> bool {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() % 2 == 0
}

pub fn stamp_secs() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
