//! The declarative per-crate policy table.
//!
//! One row per workspace crate, each toggling the line-level rules. The table is
//! code, not config — changing policy is a reviewed diff next to the rule
//! it relaxes, and [`crate::scan_workspace`] fails loudly if a row names a
//! crate that no longer exists (so the table cannot silently rot).
//!
//! Two global carve-outs are structural rather than per-row:
//!
//! * `shims/` is never scanned: the vendored shims *implement* the
//!   primitives the rules police (the `parking_lot` shim is allowed — in
//!   fact required — to use `std::sync` inside).
//! * `src/bin/` harness binaries drop the wall-clock and unwrap rules: a
//!   benchmark main measures wall time and asserts on its own output by
//!   design. Library rules (shim locks, governed threads) still apply.
//! * the `fault-wall-clock` rule is always on, everywhere: a file that
//!   consumes `FaultPlan`/`FaultClock` may not read the wall clock even
//!   where the general wall-clock rule is relaxed — fault schedules must
//!   replay bit-identically, harness or not.

use crate::RuleSet;

/// One row of the policy table.
#[derive(Debug, Clone, Copy)]
pub struct CratePolicy {
    /// Crate directory name under `crates/`.
    pub name: &'static str,
    /// Forbid `Instant::now` / `SystemTime` (waivable per site).
    pub wall_clock: bool,
    /// Forbid `std::sync::{Mutex, RwLock, Condvar}`.
    pub std_sync_lock: bool,
    /// Forbid `thread::spawn` / `thread::Builder` (waivable per site).
    pub thread_spawn: bool,
    /// Forbid `.unwrap()` / `.expect(` in non-test code (waivable per site).
    pub unwrap_expect: bool,
    /// Require `#![warn(missing_docs)]` in the crate's `lib.rs`.
    pub missing_docs: bool,
}

impl CratePolicy {
    /// Library crate under the full rule set.
    const fn strict(name: &'static str, missing_docs: bool) -> Self {
        Self {
            name,
            wall_clock: true,
            std_sync_lock: true,
            thread_spawn: true,
            unwrap_expect: true,
            missing_docs,
        }
    }

    /// Resolves the row into per-file rule toggles. Harness binaries
    /// (`src/bin/`) measure wall time and assert on their own output by
    /// design, so those two rules drop there.
    pub fn rules_for(&self, is_harness_bin: bool) -> RuleSet {
        RuleSet {
            wall_clock: self.wall_clock && !is_harness_bin,
            std_sync_lock: self.std_sync_lock,
            thread_spawn: self.thread_spawn,
            unwrap_expect: self.unwrap_expect && !is_harness_bin,
            // Fault-path purity is structural, not per-crate: any file that
            // consumes `FaultPlan`/`FaultClock` must stay on logical ticks
            // even in harness bins and wall-clock-relaxed crates, or faulted
            // runs stop replaying bit-identically.
            fault_wall_clock: true,
        }
    }
}

/// The resolved table for this workspace.
#[derive(Debug, Clone)]
pub struct PolicyTable {
    crates: Vec<CratePolicy>,
}

impl PolicyTable {
    /// The workspace's current policy.
    ///
    /// `missing_docs` is `true` for every crate that has reached full
    /// public-item rustdoc coverage (extended crate by crate; the remaining
    /// `false` rows are the open item, not an exemption in principle).
    pub fn workspace() -> Self {
        let crates = vec![
            CratePolicy::strict("mlr-math", false),
            CratePolicy::strict("mlr-fft", false),
            CratePolicy::strict("mlr-lamino", false),
            CratePolicy::strict("mlr-telemetry", true),
            CratePolicy::strict("mlr-memo", true),
            CratePolicy::strict("mlr-sim", true),
            CratePolicy::strict("mlr-solver", false),
            CratePolicy::strict("mlr-cluster", true),
            CratePolicy::strict("mlr-offload", false),
            CratePolicy::strict("mlr-core", false),
            CratePolicy::strict("mlr-runtime", true),
            CratePolicy::strict("mlr-check", true),
            // The bench harness measures wall time and asserts on its own
            // output by design; its library half still obeys the lock and
            // thread rules so the figures exercise the instrumented stack.
            CratePolicy {
                name: "mlr-bench",
                wall_clock: false,
                std_sync_lock: true,
                thread_spawn: true,
                unwrap_expect: false,
                missing_docs: false,
            },
        ];
        Self { crates }
    }

    /// The table rows.
    pub fn crates(&self) -> &[CratePolicy] {
        &self.crates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_bins_drop_wall_clock_and_unwrap_only() {
        let row = CratePolicy::strict("mlr-x", true);
        let lib = row.rules_for(false);
        assert!(lib.wall_clock && lib.unwrap_expect && lib.std_sync_lock && lib.thread_spawn);
        let bin = row.rules_for(true);
        assert!(!bin.wall_clock && !bin.unwrap_expect);
        assert!(bin.std_sync_lock && bin.thread_spawn);
        // Fault-path purity survives every relaxation.
        assert!(lib.fault_wall_clock && bin.fault_wall_clock);
        let bench = PolicyTable::workspace()
            .crates()
            .iter()
            .find(|c| c.name == "mlr-bench")
            .copied()
            .expect("mlr-bench row");
        assert!(bench.rules_for(true).fault_wall_clock);
    }

    #[test]
    fn table_lists_every_workspace_crate_once() {
        let table = PolicyTable::workspace();
        let mut names: Vec<&str> = table.crates().iter().map(|c| c.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate rows");
        assert!(names.contains(&"mlr-memo") && names.contains(&"mlr-bench"));
    }
}
