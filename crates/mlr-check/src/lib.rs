//! `mlr-check`: the workspace invariant linter.
//!
//! mLR's correctness contract rests on invariants the compiler cannot see:
//! memoization and eviction decisions must be driven by **logical ticks**,
//! never wall-clock reads; every lock must go through the instrumented
//! `parking_lot` shim (so the `lockcheck` sanitizer sees it); threads belong
//! to governor-managed pools, not ad-hoc spawns; library code surfaces typed
//! errors instead of panicking on `unwrap()`. Each of these is pinned by
//! example-based tests, but nothing stops a new call site from quietly
//! reintroducing `Instant::now()` into a decision path — until this linter.
//!
//! The scanner is deliberately token-level, not a full parser: it masks
//! comments, strings and `#[cfg(test)]` items, then matches a handful of
//! unambiguous tokens (`Instant::now`, `std::sync::Mutex`, `.unwrap()`, …)
//! against the per-crate [`PolicyTable`]. That makes it fast (the whole
//! workspace scans in milliseconds), dependency-free, and — because every
//! rule is a plain substring the compiler would also accept — essentially
//! false-positive-free on rustfmt-formatted code.
//!
//! # Waivers
//!
//! A site that legitimately violates a rule is annotated in place:
//!
//! ```text
//! // mlr-check: allow(wall-clock) — decoration only: measured time feeds stats
//! let start = Instant::now();
//! ```
//!
//! The waiver names the rule it silences and must carry a justification
//! after the dash. It applies to its own line (trailing form) or to the
//! next line (standalone comment form). Waived findings are reported
//! separately and never fail the run, so the audit trail stays visible.

#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod policy;

pub use policy::{CratePolicy, PolicyTable};

/// The rules the scanner knows. Every rule has a stable kebab-case id used
/// in reports and waiver annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `Instant::now` / `SystemTime` in deterministic library code: decision
    /// paths must run on logical ticks (`StoreClock`, iteration epochs).
    WallClock,
    /// `std::sync::{Mutex, RwLock, Condvar}` outside `shims/`: locks must go
    /// through the instrumented `parking_lot` shim so `lockcheck` sees them.
    StdSyncLock,
    /// `thread::spawn` / `thread::Builder` outside governor-managed pools:
    /// ad-hoc threads bypass the `ConcurrencyGovernor`'s core budget.
    ThreadSpawn,
    /// `.unwrap()` / `.expect(` in non-test library code: failures must
    /// surface as typed errors, not panics inside a worker.
    UnwrapExpect,
    /// `Instant::now` / `SystemTime` in a file that consumes `FaultPlan` /
    /// `FaultClock`: fault decisions must be pure in the plan and logical
    /// ticks so faulted runs replay bit-identically. Unlike
    /// [`RuleId::WallClock`] this rule is structural, not per-crate — it
    /// stays on even in harness binaries and relaxed crates, and only
    /// reports where the general rule is switched off (no double counting).
    FaultWallClock,
    /// `#![warn(missing_docs)]` missing from a crate that the policy table
    /// says has full public-item rustdoc coverage.
    MissingDocs,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 6] = [
        RuleId::WallClock,
        RuleId::StdSyncLock,
        RuleId::ThreadSpawn,
        RuleId::UnwrapExpect,
        RuleId::FaultWallClock,
        RuleId::MissingDocs,
    ];

    /// The stable id used in waiver annotations and reports.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::WallClock => "wall-clock",
            RuleId::StdSyncLock => "std-sync-lock",
            RuleId::ThreadSpawn => "thread-spawn",
            RuleId::UnwrapExpect => "unwrap-expect",
            RuleId::FaultWallClock => "fault-wall-clock",
            RuleId::MissingDocs => "missing-docs",
        }
    }

    /// Parses a waiver rule id.
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scanner hit: a rule matching at a line, either a violation or a
/// waived site (when `waived` carries the annotation's justification).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the match.
    pub line: usize,
    /// The rule that matched.
    pub rule: RuleId,
    /// The matching source line, trimmed.
    pub snippet: String,
    /// `Some(justification)` when an inline waiver covers the site.
    pub waived: Option<String>,
}

/// Scan outcome over a whole workspace (or a single source, in tests).
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived policy violations — any entry here fails the run.
    pub violations: Vec<Finding>,
    /// Waived sites, kept visible as the audit trail.
    pub waived: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the scan found no unwaived violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serialises the report as JSON (the CI artifact).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn finding(f: &Finding) -> String {
            let mut s = format!(
                "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"snippet\": \"{}\"",
                esc(&f.file),
                f.line,
                f.rule,
                esc(&f.snippet)
            );
            if let Some(reason) = &f.waived {
                s.push_str(&format!(", \"waived\": \"{}\"", esc(reason)));
            }
            s.push('}');
            s
        }
        let violations: Vec<String> = self.violations.iter().map(finding).collect();
        let waived: Vec<String> = self.waived.iter().map(finding).collect();
        format!
            (
            "{{\n  \"files_scanned\": {},\n  \"violations\": [\n    {}\n  ],\n  \"waived\": [\n    {}\n  ]\n}}\n",
            self.files_scanned,
            violations.join(",\n    "),
            waived.join(",\n    ")
        )
    }
}

/// Byte classes after masking; only [`Mask::Code`] bytes are scannable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mask {
    Code,
    CommentOrString,
}

/// Masks comments, string/char literals so token matches never fire inside
/// them. Handles line + nested block comments, plain/raw/byte strings and
/// char literals vs. lifetimes.
fn mask_source(text: &str) -> Vec<Mask> {
    let bytes = text.as_bytes();
    let mut mask = vec![Mask::Code; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    mask[i] = Mask::CommentOrString;
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        mask[i] = Mask::CommentOrString;
                        mask[i + 1] = Mask::CommentOrString;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        mask[i] = Mask::CommentOrString;
                        mask[i + 1] = Mask::CommentOrString;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        mask[i] = Mask::CommentOrString;
                        i += 1;
                    }
                }
            }
            b'"' => {
                mask[i] = Mask::CommentOrString;
                i += 1;
                while i < bytes.len() {
                    mask[i] = Mask::CommentOrString;
                    if bytes[i] == b'\\' {
                        if i + 1 < bytes.len() {
                            mask[i + 1] = Mask::CommentOrString;
                        }
                        i += 2;
                        continue;
                    }
                    let done = bytes[i] == b'"';
                    i += 1;
                    if done {
                        break;
                    }
                }
            }
            b'r' | b'b'
                if {
                    // Raw (and byte/raw-byte) string openers: r", r#", br"…
                    let mut j = i + 1;
                    if bytes[i] == b'b' && j < bytes.len() && bytes[j] == b'r' {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while j < bytes.len() && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    (bytes[i] != b'b' || i + 1 < bytes.len() && bytes[i + 1] == b'r')
                        && j < bytes.len()
                        && bytes[j] == b'"'
                        && (bytes[i] == b'r' || hashes > 0 || bytes[i] == b'b')
                } =>
            {
                // Re-derive the opener shape, then mask to the closing quote
                // followed by the same number of hashes.
                let start = i;
                let mut j = i + 1;
                if bytes[i] == b'b' && bytes[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                while bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                loop {
                    if j >= bytes.len() {
                        break;
                    }
                    if bytes[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take(j.min(bytes.len())).skip(start) {
                    *m = Mask::CommentOrString;
                }
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes ('x', '\n', '\u{1F600}'); a lifetime never closes.
                let mut j = i + 1;
                if j < bytes.len() && bytes[j] == b'\\' {
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    for m in mask.iter_mut().take((j + 1).min(bytes.len())).skip(i) {
                        *m = Mask::CommentOrString;
                    }
                    i = j + 1;
                } else if j + 1 < bytes.len() && bytes[j] != b'\'' && bytes[j + 1] == b'\'' {
                    mask[i] = Mask::CommentOrString;
                    mask[j] = Mask::CommentOrString;
                    mask[j + 1] = Mask::CommentOrString;
                    i = j + 2;
                } else {
                    i += 1; // lifetime: leave unmasked
                }
            }
            _ => i += 1,
        }
    }
    mask
}

/// Marks every byte inside `#[cfg(test)]`-attributed items (and anything
/// further down the file once a `#[cfg(test)] mod` opens) as excluded, by
/// brace-matching from the attribute.
fn test_code_spans(text: &str, mask: &[Mask]) -> Vec<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    let needles: [&str; 2] = ["#[cfg(test)]", "#[cfg(all(test"];
    let mut at = 0;
    while at < text.len() {
        let hit = needles
            .iter()
            .filter_map(|n| text[at..].find(n).map(|p| p + at))
            .min();
        let Some(start) = hit else { break };
        if mask[start] != Mask::Code {
            at = start + 1;
            continue;
        }
        // From the end of the attribute, find the item's opening brace and
        // its match, skipping masked bytes.
        let mut i = start;
        let mut depth = 0usize;
        let mut opened = false;
        while i < bytes.len() {
            if mask[i] == Mask::Code {
                match bytes[i] {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break;
                        }
                    }
                    b';' if !opened => break, // braceless item
                    _ => {}
                }
            }
            i += 1;
        }
        spans.push((start, i.min(bytes.len())));
        at = i.min(bytes.len()).max(start + 1);
    }
    spans
}

/// A waiver annotation parsed from a comment line.
#[derive(Debug, Clone)]
struct Waiver {
    rule: RuleId,
    reason: String,
    /// Line the waiver silences (its own for the trailing form, the next
    /// for the standalone form).
    target_line: usize,
}

const WAIVER_TOKEN: &str = "mlr-check: allow(";

fn parse_waivers(lines: &[&str]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(at) = line.find(WAIVER_TOKEN) else {
            continue;
        };
        let rest = &line[at + WAIVER_TOKEN.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let Some(rule) = RuleId::parse(&rest[..close]) else {
            continue;
        };
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '—', '-', ':'])
            .trim()
            .to_string();
        let standalone = line.trim_start().starts_with("//");
        waivers.push(Waiver {
            rule,
            reason,
            target_line: if standalone { idx + 2 } else { idx + 1 },
        });
    }
    waivers
}

/// Per-file rule toggles after the policy table is resolved (see
/// [`policy::CratePolicy::rules_for`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// Enforce [`RuleId::WallClock`].
    pub wall_clock: bool,
    /// Enforce [`RuleId::StdSyncLock`].
    pub std_sync_lock: bool,
    /// Enforce [`RuleId::ThreadSpawn`].
    pub thread_spawn: bool,
    /// Enforce [`RuleId::UnwrapExpect`].
    pub unwrap_expect: bool,
    /// Enforce [`RuleId::FaultWallClock`] (always on in the workspace
    /// policy — fault-path purity is not relaxable per crate).
    pub fault_wall_clock: bool,
}

impl RuleSet {
    /// Every line-level rule on (fixture tests use this).
    pub fn all() -> Self {
        Self {
            wall_clock: true,
            std_sync_lock: true,
            thread_spawn: true,
            unwrap_expect: true,
            fault_wall_clock: true,
        }
    }
}

/// Scans one source text against `rules`, returning all findings (waived
/// sites included, marked as such).
pub fn scan_source(file: &str, text: &str, rules: RuleSet) -> Vec<Finding> {
    let mask = mask_source(text);
    let excluded = test_code_spans(text, &mask);
    let raw_lines: Vec<&str> = text.lines().collect();
    let waivers = parse_waivers(&raw_lines);

    // Per-line masked copies: masked bytes blanked so token matches cannot
    // fire inside comments or literals.
    let mut masked_lines: Vec<String> = Vec::with_capacity(raw_lines.len());
    let mut line_starts: Vec<usize> = Vec::with_capacity(raw_lines.len());
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        line_starts.push(offset);
        let body = line.strip_suffix('\n').unwrap_or(line);
        let masked: String = body
            .char_indices()
            .map(|(i, c)| {
                if mask[offset + i] == Mask::Code {
                    c
                } else {
                    ' '
                }
            })
            .collect();
        masked_lines.push(masked);
        offset += line.len();
    }
    while masked_lines.len() < raw_lines.len() {
        masked_lines.push(String::new());
    }

    let in_test_code = |line_idx: usize| {
        let start = line_starts.get(line_idx).copied().unwrap_or(usize::MAX);
        excluded.iter().any(|&(s, e)| start >= s && start < e)
    };

    // A file *consumes* the fault layer when non-test code names its types
    // (doc references live in comments and are masked away). Such a file's
    // wall-clock hygiene is enforced even where the general rule is relaxed.
    let fault_consumer = masked_lines.iter().enumerate().any(|(idx, l)| {
        !in_test_code(idx) && (l.contains("FaultPlan") || l.contains("FaultClock"))
    });

    let mut findings = Vec::new();
    let mut push = |rule: RuleId, line_idx: usize, snippet: &str| {
        let waived = waivers
            .iter()
            .find(|w| w.rule == rule && w.target_line == line_idx + 1)
            .map(|w| {
                if w.reason.is_empty() {
                    "(no justification given)".to_string()
                } else {
                    w.reason.clone()
                }
            });
        findings.push(Finding {
            file: file.to_string(),
            line: line_idx + 1,
            rule,
            snippet: snippet.trim().to_string(),
            waived,
        });
    };

    for (idx, masked) in masked_lines.iter().enumerate() {
        if in_test_code(idx) {
            continue;
        }
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        let wall_clock_token = masked.contains("Instant::now") || masked.contains("SystemTime");
        if rules.wall_clock && wall_clock_token {
            push(RuleId::WallClock, idx, raw);
        }
        if rules.fault_wall_clock && !rules.wall_clock && fault_consumer && wall_clock_token {
            push(RuleId::FaultWallClock, idx, raw);
        }
        if rules.std_sync_lock
            && masked.contains("std::sync")
            && ["Mutex", "RwLock", "Condvar"]
                .iter()
                .any(|t| masked.contains(t))
        {
            push(RuleId::StdSyncLock, idx, raw);
        }
        if rules.thread_spawn
            && (masked.contains("thread::spawn") || masked.contains("thread::Builder"))
        {
            push(RuleId::ThreadSpawn, idx, raw);
        }
        if rules.unwrap_expect && (masked.contains(".unwrap()") || masked.contains(".expect(")) {
            push(RuleId::UnwrapExpect, idx, raw);
        }
    }
    findings
}

/// Checks the `#![warn(missing_docs)]` presence rule for a crate's `lib.rs`
/// text; returns the finding when the attribute is absent.
pub fn check_missing_docs_attr(file: &str, text: &str) -> Option<Finding> {
    let mask = mask_source(text);
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        let body = line.strip_suffix('\n').unwrap_or(line);
        let masked: String = body
            .char_indices()
            .map(|(i, c)| {
                if mask[offset + i] == Mask::Code {
                    c
                } else {
                    ' '
                }
            })
            .collect();
        let compact: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#![warn(missing_docs)]") {
            return None;
        }
        offset += line.len();
    }
    Some(Finding {
        file: file.to_string(),
        line: 1,
        rule: RuleId::MissingDocs,
        snippet: "#![warn(missing_docs)] is absent from this crate's lib.rs".to_string(),
        waived: None,
    })
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Scans every `crates/*/src` tree under `root` against the policy table.
pub fn scan_workspace(root: &Path, table: &PolicyTable) -> std::io::Result<Report> {
    let mut report = Report::default();
    for policy in table.crates() {
        let src = root.join("crates").join(policy.name).join("src");
        if !src.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!(
                    "policy table names crate '{}' but {src:?} is missing",
                    policy.name
                ),
            ));
        }
        let mut files = Vec::new();
        rust_files_under(&src, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            let is_harness_bin = rel.contains("/src/bin/");
            let rules = policy.rules_for(is_harness_bin);
            for finding in scan_source(&rel, &text, rules) {
                match finding.waived {
                    Some(_) => report.waived.push(finding),
                    None => report.violations.push(finding),
                }
            }
            if policy.missing_docs && rel.ends_with("/src/lib.rs") {
                if let Some(f) = check_missing_docs_attr(&rel, &text) {
                    report.violations.push(f);
                }
            }
            report.files_scanned += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(findings: &[Finding]) -> Vec<(RuleId, usize)> {
        findings
            .iter()
            .filter(|f| f.waived.is_none())
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn wall_clock_fixture_flags_rule_and_line() {
        let text = include_str!("../fixtures/wall_clock.rs");
        let found = scan_source("fixtures/wall_clock.rs", text, RuleSet::all());
        assert_eq!(
            violations(&found),
            vec![(RuleId::WallClock, 4), (RuleId::WallClock, 9)]
        );
    }

    #[test]
    fn std_sync_lock_fixture_flags_rule_and_line() {
        let text = include_str!("../fixtures/std_sync_lock.rs");
        let found = scan_source("fixtures/std_sync_lock.rs", text, RuleSet::all());
        assert_eq!(
            violations(&found),
            vec![(RuleId::StdSyncLock, 3), (RuleId::StdSyncLock, 7)]
        );
    }

    #[test]
    fn thread_spawn_fixture_flags_rule_and_line() {
        let text = include_str!("../fixtures/thread_spawn.rs");
        let found = scan_source("fixtures/thread_spawn.rs", text, RuleSet::all());
        assert_eq!(violations(&found), vec![(RuleId::ThreadSpawn, 4)]);
    }

    #[test]
    fn unwrap_expect_fixture_flags_rule_and_line() {
        let text = include_str!("../fixtures/unwrap_expect.rs");
        let found = scan_source("fixtures/unwrap_expect.rs", text, RuleSet::all());
        assert_eq!(
            violations(&found),
            vec![(RuleId::UnwrapExpect, 4), (RuleId::UnwrapExpect, 9)]
        );
    }

    #[test]
    fn missing_docs_fixture_flags_absent_attribute() {
        let text = include_str!("../fixtures/missing_docs_lib.rs");
        let f = check_missing_docs_attr("fixtures/missing_docs_lib.rs", text)
            .expect("attribute absent");
        assert_eq!(f.rule, RuleId::MissingDocs);
        assert_eq!(f.line, 1);
        // A lib that has the attribute is clean.
        assert!(check_missing_docs_attr("lib.rs", "#![warn(missing_docs)]\n").is_none());
    }

    #[test]
    fn waivers_silence_both_forms_and_keep_the_audit_trail() {
        let text = include_str!("../fixtures/waived.rs");
        let found = scan_source("fixtures/waived.rs", text, RuleSet::all());
        assert!(
            violations(&found).is_empty(),
            "waived fixture must be violation-free, got {found:?}"
        );
        let waived: Vec<RuleId> = found.iter().map(|f| f.rule).collect();
        assert_eq!(waived, vec![RuleId::WallClock, RuleId::UnwrapExpect]);
        assert!(found[0]
            .waived
            .as_deref()
            .unwrap_or("")
            .contains("decoration"));
    }

    #[test]
    fn masked_fixture_produces_no_findings() {
        let text = include_str!("../fixtures/masked.rs");
        let found = scan_source("fixtures/masked.rs", text, RuleSet::all());
        assert!(
            found.is_empty(),
            "strings/comments/test code must be masked, got {found:?}"
        );
    }

    #[test]
    fn a_waiver_for_the_wrong_rule_does_not_silence() {
        let text = "fn f() {\n    // mlr-check: allow(wall-clock) — wrong rule\n    let x: Option<u32> = None; x.unwrap();\n}\n";
        let found = scan_source("inline.rs", text, RuleSet::all());
        assert_eq!(violations(&found), vec![(RuleId::UnwrapExpect, 3)]);
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let text =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(1) + x.unwrap_or_else(|| 2) + x.unwrap_or_default()\n}\n";
        assert!(scan_source("inline.rs", text, RuleSet::all()).is_empty());
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let text = "fn f() { let _ = std::time::Instant::now(); }\n";
        let mut rules = RuleSet::all();
        rules.wall_clock = false;
        assert!(scan_source("inline.rs", text, rules).is_empty());
    }

    #[test]
    fn fault_consumers_keep_wall_clock_hygiene_where_the_general_rule_is_off() {
        // A harness-style file (wall_clock relaxed) that consumes FaultPlan
        // must still not read the wall clock.
        let text = "use mlr_sim::faults::FaultPlan;\n\nfn drive(plan: &FaultPlan) {\n    let t = std::time::Instant::now();\n    let _ = (plan, t);\n}\n";
        let mut rules = RuleSet::all();
        rules.wall_clock = false;
        let found = scan_source("inline.rs", text, rules);
        assert_eq!(violations(&found), vec![(RuleId::FaultWallClock, 4)]);
        // The same file with the general rule on reports wall-clock once,
        // not twice.
        let strict = scan_source("inline.rs", text, RuleSet::all());
        assert_eq!(violations(&strict), vec![(RuleId::WallClock, 4)]);
    }

    #[test]
    fn fault_mentions_only_in_comments_or_tests_do_not_make_a_consumer() {
        // Doc references are masked; a test-only consumer is a test concern.
        let text = "// See [`FaultPlan`] for the schedule format.\nfn f() { let _ = std::time::Instant::now(); }\n\n#[cfg(test)]\nmod tests {\n    use mlr_sim::faults::FaultClock;\n}\n";
        let mut rules = RuleSet::all();
        rules.wall_clock = false;
        assert!(scan_source("inline.rs", text, rules).is_empty());
    }

    #[test]
    fn report_json_escapes_and_lists() {
        let mut report = Report::default();
        report.violations.push(Finding {
            file: "a.rs".into(),
            line: 3,
            rule: RuleId::WallClock,
            snippet: "let t = Instant::now(); // \"decision\"".into(),
            waived: None,
        });
        report.files_scanned = 1;
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"wall-clock\""));
        assert!(json.contains("\\\"decision\\\""));
        assert!(json.contains("\"files_scanned\": 1"));
    }
}
