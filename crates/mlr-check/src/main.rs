//! Command-line entry point for the workspace invariant linter.
//!
//! ```text
//! mlr-check [--root PATH] [--report PATH] [--verbose]
//! ```
//!
//! Scans every `crates/*/src` tree named by the policy table, prints a
//! summary (and every finding under `--verbose`), optionally writes the
//! JSON report, and exits non-zero iff unwaived violations remain.

use std::path::PathBuf;
use std::process::ExitCode;

use mlr_check::{scan_workspace, Finding, PolicyTable};

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        report: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => args.root = PathBuf::from(v),
                None => return Err("--root requires a path".to_string()),
            },
            "--report" => match it.next() {
                Some(v) => args.report = Some(PathBuf::from(v)),
                None => return Err("--report requires a path".to_string()),
            },
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                return Err("usage: mlr-check [--root PATH] [--report PATH] [--verbose]".to_string())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn print_finding(prefix: &str, f: &Finding) {
    match &f.waived {
        Some(reason) => {
            eprintln!(
                "{prefix}{}:{}: [{}] waived: {reason}",
                f.file, f.line, f.rule
            )
        }
        None => eprintln!("{prefix}{}:{}: [{}] {}", f.file, f.line, f.rule, f.snippet),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("mlr-check: {msg}");
            return ExitCode::from(2);
        }
    };

    let report = match scan_workspace(&args.root, &PolicyTable::workspace()) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("mlr-check: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    for f in &report.violations {
        print_finding("", f);
    }
    if args.verbose {
        for f in &report.waived {
            print_finding("", f);
        }
    }

    eprintln!(
        "mlr-check: {} files scanned, {} violation(s), {} waived site(s)",
        report.files_scanned,
        report.violations.len(),
        report.waived.len()
    );

    if let Some(path) = &args.report {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!(
                "mlr-check: failed to write report {}: {err}",
                path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!("mlr-check: report written to {}", path.display());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
