//! Quickstart: simulate a flat phantom, reconstruct it with and without
//! memoization, and print what mLR buys you.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
use mlr_core::{MlrConfig, MlrPipeline};

fn main() {
    // A 24^3 brain-like phantom observed from 12 angles at a 35° laminography
    // tilt, reconstructed with 12 ADMM-TV iterations; memoization at τ = 0.92.
    let config = MlrConfig::quick(24, 12).with_iterations(12);
    let pipeline = MlrPipeline::new(config);

    println!("simulating projections and running exact + memoized ADMM-FFT ...");
    let report = pipeline.run_comparison();

    println!("\n== mLR quickstart ==");
    println!(
        "reconstruction accuracy vs exact ADMM-FFT : {:.3}",
        report.accuracy
    );
    println!(
        "FFT invocations avoided by memoization    : {:.1} %",
        100.0 * report.avoided_fraction
    );
    let (fail, db, cache) = report.case_distribution;
    println!(
        "case distribution (fail / db / cache)     : {:.0} % / {:.0} % / {:.0} %",
        100.0 * fail,
        100.0 * db,
        100.0 * cache
    );
    println!(
        "FFT compute wall-clock saved              : {:.1} %",
        100.0 * report.compute_saving()
    );
    println!(
        "memoization database size                 : {:.1} MiB",
        report.db_bytes as f64 / (1 << 20) as f64
    );

    // Project the measured behaviour to the paper's 1K^3 problem.
    let projection = pipeline.project_to_paper_scale(1024, report.case_distribution);
    println!(
        "projected improvement at 1K^3 (cost model) : {:.1} % (normalized time {:.3})",
        projection.improvement_percent(),
        projection.normalized_time
    );
}
