//! Multi-GPU scaling demo: distribute the chunked FFT stages over 1–16
//! simulated GPUs and report the scaling curve, interconnect utilisation and
//! memoization-query latency under contention.
//!
//! ```bash
//! cargo run --release --example scalability_demo
//! ```
use mlr_cluster::{LatencyExperiment, ScalingModel};
use mlr_sim::workload::{AdmmWorkload, ProblemSize};

fn main() {
    let model = ScalingModel::new(AdmmWorkload::new(ProblemSize::paper_1k()), 60);
    let latency = LatencyExperiment::default();

    println!("== scaling ADMM-FFT over GPUs (1K^3, 60 iterations) ==");
    println!(
        "{:>5} {:>6} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "GPUs", "nodes", "Fu1D (s)", "Fu2D (s)", "overall (s)", "link util", "p99 query"
    );
    for &gpus in &[1usize, 2, 4, 8, 16] {
        let p = model.point(gpus);
        let util = latency.utilisation(gpus);
        let p99 = latency.cdf(gpus).quantile(0.99);
        println!(
            "{:>5} {:>6} {:>10.2} {:>10.2} {:>12.1} {:>11.0}% {:>11.1} ms",
            p.gpus,
            p.nodes,
            p.fu1d_seconds,
            p.fu2d_seconds,
            p.overall_seconds,
            100.0 * util,
            p99 * 1e3
        );
    }
    println!("\nNote the knee after 4 GPUs (one full node): additional speedup is eaten by");
    println!("inter-node chunk exchange and by contention on the single memory node.");
}
