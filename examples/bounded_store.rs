//! A long-running multi-tenant workload holding steady-state memory under a
//! fixed memoization budget.
//!
//! Waves of reconstruction jobs flow through the runtime while the shared
//! store is capped at a fraction of what the workload would otherwise
//! accumulate: the cost-aware eviction policy keeps the proven-reusable
//! entries resident, the footprint plateaus at the budget instead of
//! growing with every job, and the cross-job hit rate survives.
//!
//! ```bash
//! cargo run --release --example bounded_store
//! ```

use mlr_core::{MlrConfig, MlrPipeline};
use mlr_memo::{CapacityBudget, EvictionPolicyKind};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};

fn main() {
    let base = MlrConfig::quick(12, 8).with_iterations(4);

    // Size the budget from a one-job probe: a single reconstruction's
    // memo footprint, which a long replicated run would otherwise multiply.
    let (_, probe) = MlrPipeline::new(base).run_memoized();
    let budget_bytes = probe.store().resident_bytes() * 3 / 2;
    let config = base.with_memo_budget(
        CapacityBudget::bytes(budget_bytes),
        EvictionPolicyKind::CostAware,
    );
    println!("memo budget: {budget_bytes} bytes (1.5x one job's footprint), policy: cost-aware\n");

    // No admission pressure limit here: a bounded store *saturates* in
    // steady state (resident == budget is the healthy operating point), so
    // a limit below 1.0 would turn every late submission away. The limit is
    // for deployments that prefer shedding load once the memo working set
    // stops fitting — demonstrated after the waves below.
    let runtime = Runtime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        ..RuntimeConfig::matching(&config)
    });

    // Six waves of replicated jobs — the kind of run that unboundedly grows
    // an ungoverned store.
    let waves = 6usize;
    let jobs_per_wave = 3usize;
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "wave", "jobs done", "resident", "peak", "budget %", "evicted", "cross-job"
    );
    for wave in 0..waves {
        let handles: Vec<_> = (0..jobs_per_wave)
            .map(|i| {
                runtime
                    .submit_blocking(ReconJob::new(format!("wave{wave}-job{i}"), config))
                    .expect("queue accepts the demo load")
            })
            .collect();
        for h in handles {
            let _ = h.wait();
        }
        let stats = runtime.stats();
        println!(
            "{:>5} {:>10} {:>12} {:>12} {:>9.1}% {:>10} {:>9.1}%",
            wave + 1,
            stats.completed,
            stats.store.resident_bytes,
            stats.store.peak_resident_bytes,
            100.0 * stats.store_pressure,
            stats.store.evictions,
            100.0 * stats.cross_job_hit_rate(),
        );
    }

    // Pressure-aware admission: a runtime configured with a limit sheds
    // load once the shared store saturates.
    let strict = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 4,
        admission_max_pressure: Some(0.5),
        ..RuntimeConfig::matching(&config)
    });
    strict
        .submit(ReconJob::new("fill", config))
        .expect("empty store admits")
        .wait();
    match strict.submit(ReconJob::new("shed", config)) {
        Err(e) => println!("\npressure-aware admission: {e}"),
        Ok(_) => println!("\npressure-aware admission: store still under the limit"),
    }
    drop(strict);

    let stats = runtime.shutdown();
    println!("\n== after {} jobs ==", stats.completed);
    println!("resident bytes           : {}", stats.store.resident_bytes);
    println!(
        "peak resident bytes      : {} (cap {budget_bytes})",
        stats.store.peak_resident_bytes
    );
    println!("entries evicted          : {}", stats.store.evictions);
    println!(
        "hit rate                 : {:.1} %",
        100.0 * stats.hit_rate()
    );
    println!(
        "hit rate under pressure  : {:.1} %",
        100.0 * stats.hit_rate_under_pressure()
    );
    println!(
        "cross-job hit rate       : {:.1} %",
        100.0 * stats.cross_job_hit_rate()
    );
    assert!(
        stats.store.peak_resident_bytes <= budget_bytes,
        "the budget must hold at every post-enforcement point"
    );
    println!("\nsteady-state memory held under the budget for the whole run.");
}
