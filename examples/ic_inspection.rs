//! Integrated-circuit inspection scenario: a thin, high-contrast layered
//! sample — the use case that motivates laminography in the paper's
//! introduction. Uses the looser τ = 0.90 the paper recommends for
//! large-feature samples (PCBs, low-density composites).
//!
//! ```bash
//! cargo run --release --example ic_inspection
//! ```
use mlr_core::{MlrConfig, MlrPipeline, ProblemSpec};
use mlr_solver::accuracy_vs_reference;

fn main() {
    let mut config = MlrConfig::quick(32, 16).with_tau(0.90).with_iterations(15);
    config.problem = ProblemSpec::ic(32, 16);
    let pipeline = MlrPipeline::new(config);

    println!(
        "reconstructing a {}^3 IC phantom from {} projections ...",
        32, 16
    );
    let exact = pipeline.run_exact();
    let (memo, executor) = pipeline.run_memoized();

    let vs_truth_exact =
        accuracy_vs_reference(&pipeline.dataset().ground_truth, &exact.reconstruction);
    let vs_truth_memo =
        accuracy_vs_reference(&pipeline.dataset().ground_truth, &memo.reconstruction);
    let vs_exact = accuracy_vs_reference(&exact.reconstruction, &memo.reconstruction);

    println!("\n== IC inspection (τ = 0.90) ==");
    println!("accuracy vs ground truth (exact ADMM-FFT) : {vs_truth_exact:.3}");
    println!("accuracy vs ground truth (mLR)            : {vs_truth_memo:.3}");
    println!("accuracy of mLR vs exact reconstruction   : {vs_exact:.3}");
    println!(
        "FFT invocations avoided                   : {:.1} %",
        100.0 * executor.stats().total().avoided_fraction()
    );
    println!(
        "final data-fidelity loss                  : {:.3e}",
        memo.history.records().last().unwrap().data_loss
    );
}
