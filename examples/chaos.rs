//! Fault-injection walkthrough: a deterministic chaos run over the serving
//! stack.
//!
//! A replicated-job workload runs twice — fault-free, then under a
//! [`FaultPlan`] that crashes memory node 0 mid-workload and restarts it —
//! and the example shows the three guarantees the fault layer makes:
//!
//! * the reconstructions are **bit-identical** with and without the fault
//!   (a down node degrades a hit into a recompute, never into a different
//!   value);
//! * the degradation is **observable**: `FaultStats` counts the crash, the
//!   restart's purged entries, and the hits the replica set rescued;
//! * rejected submissions can be retried with a **seeded, bounded**
//!   [`RetryPolicy`] — backoff jitter comes from the seed, not the clock.
//!
//! ```bash
//! cargo run --release --example chaos
//! ```

use mlr_core::MlrConfig;
use mlr_memo::{CapacityBudget, EvictionPolicyKind, NodeTopology};
use mlr_runtime::{ReconJob, RetryPolicy, Runtime, RuntimeConfig, ServeFront, ServeRequest};
use mlr_sim::faults::FaultPlan;
use std::time::Duration;

const JOBS: usize = 6;

/// Runs `JOBS` identical jobs over a 4-node topology, optionally under a
/// plan; returns the per-job reconstruction bits and the final runtime
/// stats.
fn run_workload(
    config: &MlrConfig,
    plan: Option<FaultPlan>,
) -> (Vec<Vec<u64>>, mlr_runtime::RuntimeStats, Vec<u64>) {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: JOBS + 1,
        topology: Some(NodeTopology::with_nodes(4)),
        fault_plan: plan,
        ..RuntimeConfig::matching(config)
    });
    let mut bits = Vec::new();
    let mut ticks = Vec::new();
    for i in 0..JOBS {
        let report = rt
            .submit(ReconJob::new(format!("job-{i}"), *config))
            .expect("queue has room")
            .wait_report()
            .expect("job completes");
        bits.push(
            report
                .reconstruction
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        );
        ticks.push(
            rt.distributed()
                .expect("topology set")
                .inner()
                .current_tick(),
        );
    }
    (bits, rt.shutdown(), ticks)
}

fn main() {
    // τ = 0.9999 admits only exact hits, the precondition for fault-path
    // bit-identity (an approximate hit recomputed exactly would differ).
    let config = MlrConfig::quick(12, 8).with_iterations(3).with_tau(0.9999);

    // --- 1. Fault-free baseline (also measures the logical timeline). ---
    let (baseline_bits, baseline_stats, ticks) = run_workload(&config, None);
    println!(
        "fault-free: {JOBS} jobs, store hit rate {:.1} %",
        100.0 * baseline_stats.store.hit_rate()
    );

    // --- 2. The same workload under a node crash + restart. -------------
    // The window is placed in logical store ticks taken from the baseline
    // run's own job boundaries: node 0 dies during job 4 — late enough that
    // hot entries have earned replication — and restarts (its stripes
    // purged) at job 4's end.
    let plan = FaultPlan::new(1).crash_window(0, ticks[3], ticks[4]);
    let (faulted_bits, faulted_stats, _) = run_workload(&config, Some(plan));
    let faults = faulted_stats
        .fault_stats()
        .cloned()
        .expect("fault plan was armed");
    println!(
        "faulted:    store hit rate {:.1} % (crashes {}, restarts {}, \
         entries purged {}, replica-saved hits {})",
        100.0 * faulted_stats.store.hit_rate(),
        faults.crashes,
        faults.restarts,
        faults.lost_entries,
        faults.replica_saved_hits,
    );
    match faults.recovery_ticks_to_half_hit_rate {
        Some(t) => println!("recovery:   half the pre-crash hit rate after {t} ticks"),
        None => println!("recovery:   not reached within the workload"),
    }
    assert_eq!(
        faulted_bits, baseline_bits,
        "the fault layer must never change a reconstruction"
    );
    println!("identity:   all {JOBS} reconstructions bit-identical to fault-free\n");

    // --- 3. Bounded, seeded retry against a saturated front-end. ---------
    // A one-entry memo budget plus a pressure-based admission limit makes
    // the runtime turn submissions away deterministically — the shape of a
    // transient overload a client should retry through.
    let tight = MlrConfig::quick(12, 8)
        .with_iterations(4)
        .with_memo_budget(CapacityBudget::entries(1), EvictionPolicyKind::Fifo);
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 4,
        admission_max_pressure: Some(0.5),
        ..RuntimeConfig::matching(&tight)
    });
    let fill = front
        .submit(ServeRequest::new("fill", tight))
        .expect("empty front admits");
    assert!(fill.wait().is_completed());
    let policy = RetryPolicy::new(3)
        .with_seed(7)
        .with_tick(Duration::from_micros(50));
    match front.submit_with_retry(ServeRequest::new("overload", tight), &policy) {
        Ok(_) => println!("retry:      admitted after backoff"),
        Err(e) => println!(
            "retry:      still rejected after {} seeded-backoff attempts ({e})",
            policy.max_attempts
        ),
    }
    let _ = front.shutdown();
}
