//! Biological-tissue scenario: a flat soft-tissue phantom reconstructed with
//! the strict τ = 0.95 the paper recommends for fine structures, plus an
//! ADMM-Offload plan for the host memory footprint.
//!
//! ```bash
//! cargo run --release --example brain_imaging
//! ```
use mlr_core::{MlrConfig, MlrPipeline};
use mlr_offload::{simulate::simulate_all, IterationProfile, OffloadPlanner};
use mlr_sim::memory::gib;
use mlr_sim::workload::{AdmmWorkload, ProblemSize};
use mlr_sim::CostModel;

fn main() {
    // Numerical reconstruction at laptop scale, strict threshold.
    let config = MlrConfig::quick(32, 16).with_tau(0.95).with_iterations(15);
    let pipeline = MlrPipeline::new(config);
    println!("reconstructing a 32^3 soft-tissue phantom (τ = 0.95) ...");
    let report = pipeline.run_comparison();
    println!("accuracy vs exact reconstruction : {:.3}", report.accuracy);
    println!(
        "FFT invocations avoided          : {:.1} %",
        100.0 * report.avoided_fraction
    );

    // Memory planning for the paper-scale (1K^3) version of the same study.
    let workload = AdmmWorkload::new(ProblemSize::paper_1k());
    let cost = CostModel::polaris(1);
    let profile = IterationProfile::from_workload(&workload, &cost);
    let planner = OffloadPlanner::new(&profile, &cost);
    let (plan, eval) = planner.best_plan();
    println!("\n== ADMM-Offload plan for the 1K^3 study ==");
    println!("offloaded variables : {:?}", plan.variables);
    println!(
        "memory saving       : {:.1} % (peak {:.0} GiB)",
        100.0 * eval.memory_saving,
        gib(eval.peak_bytes)
    );
    println!(
        "performance loss    : {:.1} %",
        100.0 * eval.performance_loss
    );
    println!("MT metric           : {:.2}", eval.mt);

    println!("\nall offloading strategies (5 iterations):");
    for trace in simulate_all(&profile, &cost, 5) {
        println!(
            "  {:<22} peak {:>6.1} GiB  time {:>8.1} s  MT {:>6.2}",
            trace.label,
            gib(trace.peak_bytes),
            trace.total_seconds,
            trace.mt
        );
    }
}
