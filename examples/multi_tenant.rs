//! Multi-tenant serving: four concurrent reconstruction jobs sharing one
//! sharded memoization store.
//!
//! Later-arriving jobs reuse the USFFT results earlier jobs memoized, so
//! they avoid far more FFT work than a cold-started reconstruction — the
//! multi-job payoff of the paper's shared memoization database.
//!
//! ```bash
//! cargo run --release --example multi_tenant
//! ```

use mlr_core::MlrConfig;
use mlr_runtime::{Priority, ReconJob, Runtime, RuntimeConfig};

fn main() {
    // The beamline scenario: replicated reconstructions of one sample
    // family (same geometry, same phantom statistics) arriving together.
    let config = MlrConfig::quick(16, 8).with_iterations(8);
    let runtime = Runtime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        ..RuntimeConfig::matching(&config)
    });

    println!("submitting 4 jobs to a 2-worker runtime over one shared store ...\n");
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let job = ReconJob::new(format!("sample-{i}"), config).with_priority(if i == 3 {
                Priority::Interactive
            } else {
                Priority::Normal
            });
            runtime.submit(job).expect("queue has room for the demo")
        })
        .collect();

    let mut reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait_report().expect("demo job completes"))
        .collect();
    reports.sort_by_key(|r| r.job);
    for r in &reports {
        println!(
            "job {} ({:<9})  FFT work avoided: {:>5.1} %   queued {:>6.3}s   ran {:>5.2}s",
            r.job,
            r.name,
            100.0 * r.avoided_fraction,
            r.queue_seconds,
            r.run_seconds
        );
    }

    let stats = runtime.shutdown();
    println!("\n== shared store, after all jobs ==");
    println!("entries                  : {}", stats.store.entries);
    println!(
        "hit rate                 : {:.1} %",
        100.0 * stats.hit_rate()
    );
    println!(
        "cross-job hit rate       : {:.1} %  (queries served by another job's entry)",
        100.0 * stats.cross_job_hit_rate()
    );
    println!(
        "mean queue latency       : {:.3} s",
        stats.queue_seconds_mean
    );
    println!(
        "throughput               : {:.2} jobs/s",
        stats.throughput_jobs_per_second()
    );
    println!(
        "worker utilisation       : {:.1} %",
        100.0 * stats.utilisation()
    );
}
