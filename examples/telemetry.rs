//! Observability: unified counters, stage timers, lifecycle spans and the
//! store access trace over a telemetry-enabled serving front-end.
//!
//! The front-end runs a small multi-tenant workload (bulk jobs plus a
//! deadline-tagged preview), then drains everything the telemetry stack
//! recorded: job/chunk counters, per-stage hit-path latency percentiles
//! from the log₂ histograms, the tail of the span journal, a slice of the
//! store access trace, and the JSON / Chrome-trace exports.
//!
//! ```bash
//! cargo run --release --example telemetry
//! ```

use mlr_core::MlrConfig;
use mlr_runtime::{Deadline, Priority, RuntimeConfig, ServeFront, ServeRequest};
use mlr_telemetry::{CounterId, StageId, COUNTER_NAMES, STAGE_NAMES};
use std::time::Duration;

fn main() {
    let config = MlrConfig::quick(16, 8).with_iterations(6);
    let front = ServeFront::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        // Turn the recorder on. Disabled (the default) every instrument in
        // the stack compiles down to one predictable branch.
        telemetry: true,
        // Opt into the store access trace as well (the one recorder with
        // per-store-access cost), keeping the last 4096 accesses.
        access_trace: Some(4096),
        ..RuntimeConfig::matching(&config)
    });

    println!("running 4 jobs through a telemetry-enabled 2-worker front-end ...\n");

    let handles: Vec<_> = (0..3)
        .map(|i| {
            front
                .submit(
                    ServeRequest::new(format!("bulk-{i}"), config).with_priority(Priority::Batch),
                )
                .expect("queue has room for the demo")
        })
        .collect();
    let preview = front
        .submit(
            ServeRequest::new("preview", config)
                .with_priority(Priority::Interactive)
                .with_deadline(Deadline::within(Duration::from_secs(120))),
        )
        .expect("queue has room for the demo");

    for handle in handles.iter().chain([&preview]) {
        let status = handle
            .wait_timeout(Duration::from_secs(600))
            .expect("all jobs resolve well within the demo budget");
        println!("job {:<2} {:<9} → {status}", handle.id(), handle.name());
    }

    // Everything recorded so far, in one self-contained copy. The handle
    // stays live after shutdown, so snapshots can also be taken mid-flight.
    let snapshot = front
        .telemetry()
        .snapshot()
        .expect("telemetry was enabled in the RuntimeConfig");
    front.shutdown();

    println!("\n== counters ==");
    for (name, value) in COUNTER_NAMES.iter().zip(snapshot.metrics.counters) {
        println!("{name:<20} {value}");
    }

    println!("\n== hit-path stage timers (ns per chunk, log2-bucket floors) ==");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p90", "p99"
    );
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        let stage = &snapshot.metrics.stages[i];
        if stage.count == 0 {
            continue;
        }
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>10}",
            name,
            stage.count,
            stage.percentile(0.50),
            stage.percentile(0.90),
            stage.percentile(0.99),
        );
    }
    let hits = snapshot.metrics.counter(CounterId::CacheHitChunks)
        + snapshot.metrics.counter(CounterId::DbHitChunks);
    let committed = snapshot.metrics.counter(CounterId::ChunksCommitted).max(1);
    println!(
        "\nhit rate: {:.1} % of {} committed chunks; encode p50 {} ns vs miss-FFT p50 {} ns",
        100.0 * hits as f64 / committed as f64,
        committed,
        snapshot.metrics.stage(StageId::Encode).percentile(0.50),
        snapshot.metrics.stage(StageId::MissFft).percentile(0.50),
    );

    println!(
        "\n== span journal (last 8 of {}, {} dropped by the ring) ==",
        snapshot.spans.len(),
        snapshot.spans_dropped
    );
    for span in snapshot.spans.iter().rev().take(8).rev() {
        println!(
            "tick {:>5}  job {:<2} {:<10} arg={}",
            span.tick,
            span.job,
            span.kind.name(),
            span.arg
        );
    }

    println!(
        "\n== store access trace (last 4 of {}, {} dropped) ==",
        snapshot.accesses.len(),
        snapshot.accesses_dropped
    );
    for access in snapshot.accesses.iter().rev().take(4).rev() {
        println!(
            "store tick {:>6}  {:<7} entry {:<5} stripe {}",
            access.tick,
            access.kind.name(),
            access.entry,
            access.stripe
        );
    }

    // The whole snapshot exports as one JSON document, and the span journal
    // additionally as Chrome trace-event format — load it in Perfetto or
    // chrome://tracing to see per-job tracks.
    let json = snapshot.to_json();
    let trace = snapshot.to_chrome_trace();
    println!("\n== exports ==");
    println!(
        "snapshot JSON   : {} bytes, starts {:?}",
        json.len(),
        &json[..32]
    );
    println!(
        "chrome trace    : {} bytes, starts {:?}",
        trace.len(),
        &trace[..32]
    );
}
