//! The distributed memo tier: stripes spread across simulated memory
//! nodes, hot-entry replication, and trace replay through the shared-link
//! contention model.
//!
//! A topology-configured runtime serves a small multi-tenant workload, so
//! every store access is charged through the modeled Slingshot
//! interconnect while staying bit-identical to the process-local store.
//! The example then prints the per-node utilisation snapshot (Figure 15
//! analogue), replays the recorded access trace through
//! `mlr_cluster::replay_trace`, and reports the replayed query-latency
//! CDF (Figure 16 analogue).
//!
//! ```bash
//! cargo run --release --example cluster
//! ```

use mlr_cluster::{replay_trace, ReplayConfig};
use mlr_core::MlrConfig;
use mlr_math::stats::Ecdf;
use mlr_memo::NodeTopology;
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use mlr_sim::hardware::InterconnectSpec;
use mlr_telemetry::parse_access_records;

fn main() {
    let config = MlrConfig::quick(16, 8).with_iterations(4);
    // Four simulated memory nodes behind a Slingshot-11 interconnect. The
    // topology only changes the modeled cost accounting: reconstructions
    // stay bit-identical to a runtime without one (tests/distributed.rs).
    let topology = NodeTopology::with_nodes(4);
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        // Record the store access trace so the run can be replayed.
        telemetry: true,
        access_trace: Some(1 << 16),
        topology: Some(topology),
        ..RuntimeConfig::matching(&config)
    });

    println!(
        "running 4 jobs over {} memory nodes ({} stripes each on average) ...\n",
        topology.nodes,
        rt.distributed()
            .expect("topology configured")
            .placement()
            .len()
            / topology.nodes
    );

    for i in 0..4 {
        rt.submit(ReconJob::new(format!("tenant-{i}"), config))
            .expect("queue has room for the demo")
            .wait_report()
            .expect("job completes");
    }

    let distributed = rt.distributed().expect("topology configured");
    let placement = distributed.placement().to_vec();
    let live = distributed.distributed_stats();
    let snapshot = rt.telemetry().snapshot().expect("telemetry enabled");
    let stats = rt.shutdown();

    // Per-node utilisation of the live run — which stripes each node owns,
    // how much traffic its link carried, and how busy it was.
    println!("== live per-node stats (modeled link accounting) ==");
    println!(
        "{:<6} {:>7} {:>8} {:>6} {:>8} {:>10} {:>9}",
        "node", "stripes", "entries", "hits", "msgs", "bytes", "util"
    );
    for node in &live.nodes {
        println!(
            "{:<6} {:>7} {:>8} {:>6} {:>8} {:>10.0} {:>8.1}%",
            node.node,
            node.stripes,
            node.entries,
            node.hits,
            node.messages,
            node.bytes,
            100.0 * node.utilisation,
        );
    }
    println!(
        "replicas: {} resident, {} promotions; {:.0}% of hits served node-local",
        live.replicas,
        live.promotions,
        100.0 * live.local_hit_fraction(),
    );
    println!(
        "store totals: {} hits ({} cross-job), {} entries resident",
        stats.store.hits, stats.store.cross_job_hits, stats.store.entries
    );

    // Replay the recorded trace through the shared-link contention model
    // over the run's own stripe placement — the Figure 15/16 harness.
    let records = parse_access_records(&snapshot.to_json()).expect("trace round-trips");
    let outcome = replay_trace(
        &records,
        &placement,
        &ReplayConfig::new(InterconnectSpec::slingshot11()),
    );
    let ecdf = Ecdf::new(&outcome.query_latencies);
    println!(
        "\n== trace replay ({} accesses, {} queries) ==",
        records.len(),
        outcome.query_latencies.len()
    );
    println!(
        "query latency CDF: p50 {:.2} us, p90 {:.2} us, p99 {:.2} us",
        ecdf.quantile(0.50) * 1e6,
        ecdf.quantile(0.90) * 1e6,
        ecdf.quantile(0.99) * 1e6,
    );
    println!(
        "{} of {} nodes active; {} local / {} remote hits, {} promotions",
        outcome.active_nodes(),
        topology.nodes,
        outcome.local_hits,
        outcome.remote_hits,
        outcome.promotions,
    );
}
