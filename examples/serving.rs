//! Deadline-aware serving: requests with deadlines and cancellation over
//! the shared-store runtime.
//!
//! The beamline scenario: bulk reconstructions fill the queue while an
//! operator asks for an interactive alignment preview that is only useful
//! before the next scan starts (a deadline), and abandons one of the bulk
//! jobs halfway (cancellation). Every submission resolves to a typed
//! status — completed, cancelled, or expired — instead of a bare channel
//! error.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use mlr_core::MlrConfig;
use mlr_runtime::{Deadline, Priority, RuntimeConfig, ServeFront, ServeRequest};
use std::time::Duration;

fn main() {
    let config = MlrConfig::quick(16, 8).with_iterations(8);
    let front = ServeFront::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        ..RuntimeConfig::matching(&config)
    });

    println!("submitting to a 2-worker serving front-end over one shared store ...\n");

    // Bulk work at batch priority.
    let bulk: Vec<_> = (0..4)
        .map(|i| {
            front
                .submit(
                    ServeRequest::new(format!("bulk-{i}"), config).with_priority(Priority::Batch),
                )
                .expect("queue has room for the demo")
        })
        .collect();

    // The operator's preview: interactive priority, 120 s deadline.
    let preview = front
        .submit(
            ServeRequest::new("preview", config)
                .with_priority(Priority::Interactive)
                .with_deadline(Deadline::within(Duration::from_secs(120))),
        )
        .expect("queue has room for the demo");

    // A hopeless request: its deadline is already due when it is admitted,
    // so the worker skips it at pop — it never runs.
    let hopeless = front
        .submit(
            ServeRequest::new("hopeless", config).with_deadline(Deadline::within(Duration::ZERO)),
        )
        .expect("queue has room for the demo");

    // The operator changes their mind about one bulk job.
    let abandoned = &bulk[3];
    let registered = abandoned.cancel();
    println!(
        "cancelled {:<10} (registered while live: {registered})",
        abandoned.name()
    );

    for handle in bulk.iter().chain([&preview, &hopeless]) {
        let status = handle
            .wait_timeout(Duration::from_secs(600))
            .expect("all jobs resolve well within the demo budget");
        println!("job {:<2} {:<10} → {status}", handle.id(), handle.name());
    }

    let stats = front.shutdown();
    println!("\n== serving front-end, after all requests ==");
    println!("completed                : {}", stats.completed);
    println!("cancelled                : {}", stats.cancelled);
    println!("expired                  : {}", stats.expired);
    println!(
        "deadline miss rate       : {:.1} %  ({} met / {} missed)",
        100.0 * stats.deadline_miss_rate(),
        stats.deadline.met,
        stats.deadline.missed
    );
    println!(
        "deadline slack p50       : {:+.2} s",
        stats.deadline.slack_p50_seconds
    );
    println!(
        "cross-job hit rate       : {:.1} %",
        100.0 * stats.cross_job_hit_rate()
    );
    println!(
        "throughput               : {:.2} jobs/s",
        stats.throughput_jobs_per_second()
    );
}
