//! Integration tests for deterministic intra-job chunk parallelism: the
//! two-phase batch schedule must reconstruct bit-identically for every
//! `intra_job_threads`, sequential included — standalone, over a shared
//! `ShardedMemoDb`, and under an eviction budget — and the runtime's global
//! concurrency governor must keep jobs × chunk threads within the core
//! budget.

use mlr_core::{MlrConfig, MlrPipeline};
use mlr_memo::{CapacityBudget, EvictionPolicyKind, MemoStore};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use std::sync::Arc;

fn base_config() -> MlrConfig {
    MlrConfig::quick(12, 8).with_iterations(5)
}

fn bits(reconstruction: &[f64]) -> Vec<u64> {
    reconstruction.iter().map(|v| v.to_bits()).collect()
}

/// Runs one standalone memoized reconstruction at `threads` chunk threads
/// and returns the reconstruction bits plus the (db, cache, failed) hit
/// counts — hit parity is part of the determinism contract.
fn run_standalone(config: MlrConfig, threads: usize) -> (Vec<u64>, (u64, u64, u64)) {
    let pipeline = MlrPipeline::new(config.with_intra_job_threads(threads));
    let (result, executor) = pipeline.run_memoized();
    let total = executor.stats().total();
    (
        bits(result.reconstruction.as_slice()),
        (total.db_hits, total.cache_hits, total.failed_memo),
    )
}

/// Same, over a freshly built shared sharded store.
fn run_sharded(config: MlrConfig, threads: usize, shards: usize) -> (Vec<u64>, (u64, u64, u64)) {
    let pipeline = MlrPipeline::new(config.with_intra_job_threads(threads));
    let store = pipeline.build_shared_store(shards);
    let shared: Arc<dyn MemoStore> = store as Arc<dyn MemoStore>;
    let (result, executor) = pipeline.run_memoized_with_store(shared, 7);
    let total = executor.stats().total();
    (
        bits(result.reconstruction.as_slice()),
        (total.db_hits, total.cache_hits, total.failed_memo),
    )
}

#[test]
fn reconstruction_is_bit_identical_across_thread_counts() {
    let (reference, ref_hits) = run_standalone(base_config(), 1);
    assert!(
        ref_hits.0 + ref_hits.1 > 0,
        "schedule never hits — test is vacuous: {ref_hits:?}"
    );
    for threads in [2, 4, 8] {
        let (parallel, hits) = run_standalone(base_config(), threads);
        assert_eq!(
            parallel, reference,
            "{threads} chunk threads changed the reconstruction"
        );
        assert_eq!(hits, ref_hits, "{threads} threads changed the hit counts");
    }
}

#[test]
fn sharded_store_is_bit_identical_across_thread_counts() {
    // The sequential single-tenant run is the reference; every thread count
    // over a fresh ShardedMemoDb must reproduce it exactly (the store seam
    // guarantees Local == Sharded, the schedule guarantees 1 == N threads).
    let (reference, ref_hits) = run_standalone(base_config(), 1);
    for threads in [1, 2, 4, 8] {
        let (parallel, hits) = run_sharded(base_config(), threads, 8);
        assert_eq!(
            parallel, reference,
            "{threads} threads over a sharded store diverged"
        );
        assert_eq!(hits, ref_hits);
    }
}

#[test]
fn bounded_store_is_bit_identical_across_thread_counts() {
    // Under a binding eviction budget the commit order *is* the eviction
    // schedule, so this pins that inserts/evictions replay identically for
    // every thread count.
    let probe = MlrPipeline::new(base_config());
    let (_, probe_exec) = probe.run_memoized();
    let cap = probe_exec.store().resident_bytes() / 2;
    assert!(cap > 0);

    let bounded =
        || base_config().with_memo_budget(CapacityBudget::bytes(cap), EvictionPolicyKind::Lru);
    let (reference, ref_hits) = run_standalone(bounded(), 1);
    let evictions = {
        let pipeline = MlrPipeline::new(bounded());
        let (_, executor) = pipeline.run_memoized();
        executor.store().stats().evictions
    };
    assert!(evictions > 0, "budget never bound — test is vacuous");
    for threads in [2, 4, 8] {
        let (parallel, hits) = run_standalone(bounded(), threads);
        assert_eq!(
            parallel, reference,
            "{threads} threads diverged under an eviction budget"
        );
        assert_eq!(hits, ref_hits);
        let (sharded, sharded_hits) = run_sharded(bounded(), threads, 4);
        assert_eq!(
            sharded, reference,
            "{threads} threads over a bounded sharded store diverged"
        );
        assert_eq!(sharded_hits, ref_hits);
    }
}

#[test]
fn zero_copy_batch_seam_matches_sequential_execute() {
    // Drives the output-slice seam directly: one executor runs chunk by
    // chunk through `execute` (owned-Vec returns), a twin consumes the same
    // trace through multi-chunk `execute_batch_into` dispatches whose memo
    // hits are single memcpys from the shared `Arc<[Complex64]>` payloads
    // into caller-provided slices. Outputs must be bitwise equal and the
    // case counts identical — over both the local store and a shared
    // `ShardedMemoDb` — so the zero-copy path cannot drift from the
    // reference protocol.
    use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
    use mlr_math::Complex64;
    use mlr_memo::{EncoderConfig, MemoConfig, MemoDbConfig, MemoizedExecutor, ShardedMemoDb};
    use rand::Rng;

    let encoder = EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 8,
        learning_rate: 1e-3,
    };
    let memo = MemoConfig {
        warmup_iterations: 0,
        ..Default::default()
    };
    let fake_fft = |x: &[Complex64]| -> Vec<Complex64> {
        x.iter().map(|z| Complex64::new(-z.im, z.re)).collect()
    };
    let chunk = |loc: usize, it: usize| -> Vec<Complex64> {
        let mut rng = mlr_math::rng::seeded(70 + loc as u64);
        (0..96)
            .map(|_| Complex64::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .map(|z| z.scale(1.0 + 0.001 * it as f64))
            .collect()
    };
    let sharded = |seed: u64| {
        let db_config = MemoDbConfig {
            tau: memo.tau,
            ..Default::default()
        };
        MemoizedExecutor::with_store(
            memo,
            Arc::new(ShardedMemoDb::new(db_config, encoder, seed)),
            0,
        )
    };
    let pairs: [(MemoizedExecutor, MemoizedExecutor); 2] = [
        (
            MemoizedExecutor::new(memo, encoder, 11),
            MemoizedExecutor::new(memo, encoder, 11),
        ),
        (sharded(11), sharded(11)),
    ];
    for (label, (sequential, batched)) in ["local", "sharded"].iter().zip(pairs) {
        let locations = 6usize;
        for it in 0..5 {
            sequential.begin_iteration(it);
            batched.begin_iteration(it);
            let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, it)).collect();
            let reference: Vec<Vec<Complex64>> = (0..locations)
                .map(|loc| sequential.execute(FftOpKind::Fu2D, loc, &inputs[loc], &fake_fft))
                .collect();
            let compute = |x: &[Complex64]| fake_fft(x);
            let batch: Vec<ChunkRequest<'_>> = inputs
                .iter()
                .enumerate()
                .map(|(loc, input)| ChunkRequest {
                    loc,
                    input,
                    compute: &compute,
                })
                .collect();
            let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; 96]; locations];
            let mut slots: Vec<&mut [Complex64]> =
                outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
            batched.execute_batch_into(FftOpKind::Fu2D, &batch, &mut slots);
            assert_eq!(
                outputs, reference,
                "{label}: zero-copy outputs diverged at iteration {it}"
            );
        }
        sequential.finish();
        batched.finish();
        let a = sequential.stats().total();
        let b = batched.stats().total();
        assert_eq!(
            (a.failed_memo, a.db_hits, a.cache_hits, a.remote_bytes),
            (b.failed_memo, b.db_hits, b.cache_hits, b.remote_bytes),
            "{label}: case counts diverged"
        );
        assert_eq!(
            (a.prefiltered, a.keys_encoded),
            (b.prefiltered, b.keys_encoded),
            "{label}: prefilter decisions diverged between the paths"
        );
        assert!(
            a.prefiltered > 0,
            "{label}: the norm prefilter never fired — vacuous for the doorkeeper"
        );
        assert!(
            a.db_hits + a.cache_hits > 0,
            "{label}: trace never hit — vacuous"
        );
    }
}

#[test]
fn parallel_stats_record_the_schedule() {
    let pipeline = MlrPipeline::new(base_config().with_intra_job_threads(4));
    let (_, executor) = pipeline.run_memoized();
    let p = executor.parallel_stats();
    assert!(p.batches > 0);
    assert!(p.chunks >= p.batches, "every batch holds ≥ 1 chunk");
    // No governor: the full request is always granted.
    assert_eq!(p.threads_granted, p.threads_requested);
    assert_eq!(p.grant_ratio(), 1.0);
    assert!(p.modeled_speedup() >= 1.0);
    assert!(p.chunk_seconds > 0.0);
}

#[test]
fn governor_keeps_jobs_times_threads_within_the_core_budget() {
    // 2 workers over a 4-core budget leave 2 spare cores; with every job
    // asking for 8 chunk threads, concurrent grants must never exceed the
    // spare pool, and each job's per-batch grant stays ≤ 1 + capacity.
    let config = base_config();
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        intra_job_threads: 8,
        core_budget: 4,
        ..RuntimeConfig::matching(&config)
    });
    assert_eq!(rt.governor().capacity(), 2);
    let handles: Vec<_> = (0..4)
        .map(|i| rt.submit(ReconJob::new(format!("p-{i}"), config)).unwrap())
        .collect();
    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait_report().expect("parallel job completes"))
        .collect();
    for report in &reports {
        let p = report.parallel;
        assert!(p.threads_requested > 0);
        assert!(p.threads_granted <= p.threads_requested);
        // 1 owned core + at most the whole spare pool per batch.
        assert!(p.mean_threads() <= 1.0 + rt.governor().capacity() as f64);
    }
    // The governor never leased beyond its spare pool: workers × threads
    // stayed within the core budget at every instant.
    let governor = Arc::clone(rt.governor());
    let stats = rt.shutdown();
    assert!(stats.parallel.batches > 0);
    assert!(stats.parallel_efficiency() > 0.0 && stats.parallel_efficiency() <= 1.0);
    assert!(governor.peak_in_use() <= governor.capacity());
    assert_eq!(governor.in_use(), 0, "all leases returned after shutdown");
}

#[test]
fn runtime_job_with_threads_matches_sequential_run_memoized() {
    // The runtime determinism contract extended to the parallel scheduler:
    // one job through the runtime at 4 chunk threads == the classic
    // sequential `run_memoized`.
    let config = base_config();
    let pipeline = MlrPipeline::new(config);
    let (reference, _) = pipeline.run_memoized();

    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        intra_job_threads: 4,
        core_budget: 8,
        ..RuntimeConfig::matching(&config)
    });
    let report = rt
        .submit(ReconJob::new("parallel-determinism", config))
        .unwrap()
        .wait_report()
        .expect("governed job completes");
    assert_eq!(
        bits(report.reconstruction.as_slice()),
        bits(reference.reconstruction.as_slice()),
        "a governed parallel job diverged from the sequential pipeline"
    );
    rt.shutdown();
}
