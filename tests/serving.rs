//! Integration tests for the deadline-aware serving front-end: typed
//! terminal statuses, two-stage cancellation (queued vs running), deadline
//! expiry before pop, and the determinism contract that a job which *runs
//! to completion* through `ServeFront` reconstructs bit-identically to
//! `MlrPipeline::run_memoized`.

use mlr_core::{MlrConfig, MlrPipeline};
use mlr_memo::MemoStore;
use mlr_runtime::{
    Deadline, JobPhase, JobStatus, Priority, RuntimeConfig, ServeFront, ServeRequest,
};
use std::time::Duration;

fn tiny_config() -> MlrConfig {
    MlrConfig::quick(12, 8).with_iterations(4)
}

/// A config big enough that a worker holds it for a while (hundreds of
/// milliseconds at least), so queued-job semantics behind it are exercised
/// deterministically.
fn blocker_config() -> MlrConfig {
    MlrConfig::quick(12, 8).with_iterations(40)
}

fn spin_until(what: &str, done: impl FnMut() -> bool) {
    mlr_bench::spin_until(what, Duration::from_secs(30), done);
}

#[test]
fn expired_before_pop_is_reported_and_never_runs() {
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 4,
        ..RuntimeConfig::matching(&tiny_config())
    });
    // The blocker occupies the single worker; the victim's deadline is
    // already due when it is admitted, so by the time the worker pops it,
    // it must be skipped — reported `Expired`, never executed.
    let blocker = front
        .submit(ServeRequest::new("blocker", blocker_config()))
        .unwrap();
    let victim = front
        .submit(
            ServeRequest::new("victim", tiny_config())
                .with_deadline(Deadline::within(Duration::ZERO)),
        )
        .unwrap();
    match victim.wait() {
        JobStatus::Expired {
            while_running,
            late_seconds,
            completed_iterations,
        } => {
            assert!(!while_running, "expired-in-queue job must never run");
            assert!(late_seconds >= 0.0);
            assert_eq!(completed_iterations, 0);
        }
        other => panic!("expected Expired, got {other:?}"),
    }
    assert!(blocker.wait().is_completed());
    let stats = front.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.deadline.submitted, 1);
    assert_eq!(stats.deadline.missed, 1);
    assert_eq!(stats.deadline.met, 0);
    assert!((stats.deadline_miss_rate() - 1.0).abs() < 1e-12);
    // The expired job's slack sample is negative (it was late).
    assert!(stats.deadline.slack_p50_seconds <= 0.0);
}

#[test]
fn cancel_while_queued_never_runs_and_frees_the_slot() {
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 1,
        ..RuntimeConfig::matching(&tiny_config())
    });
    let blocker = front
        .submit(ServeRequest::new("blocker", blocker_config()))
        .unwrap();
    // Wait until the worker picked the blocker up, so the victim occupies
    // the single queue slot.
    spin_until("blocker to start running", || {
        blocker.phase() == JobPhase::Running
    });
    let victim = front
        .submit(ServeRequest::new("victim", tiny_config()))
        .unwrap();
    assert_eq!(victim.phase(), JobPhase::Queued);
    assert!(victim.cancel(), "cancel of a queued job must register");
    match victim.wait() {
        JobStatus::Cancelled {
            while_running,
            completed_iterations,
        } => {
            assert!(!while_running, "cancelled-while-queued job must never run");
            assert_eq!(completed_iterations, 0);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The queue slot freed on the spot: the next submission is admitted
    // even though the blocker is still running.
    let replacement = front
        .submit(ServeRequest::new("replacement", tiny_config()))
        .expect("cancelling the queued victim must free its slot immediately");
    assert!(blocker.wait().is_completed());
    assert!(replacement.wait().is_completed());
    let stats = front.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.submitted, 3);
}

#[test]
fn cancel_while_running_stops_at_an_iteration_boundary() {
    let config = MlrConfig::quick(12, 8).with_iterations(200);
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        ..RuntimeConfig::matching(&config)
    });
    let handle = front.submit(ServeRequest::new("long", config)).unwrap();
    // Wait until the job has demonstrably started touching the store (its
    // first iteration is in flight), then cancel: at least one iteration
    // boundary must pass before the solver observes the token.
    spin_until("first iteration to start", || {
        front.runtime().store().stats().queries > 0
    });
    assert!(handle.cancel());
    match handle.wait() {
        JobStatus::Cancelled {
            while_running,
            completed_iterations,
        } => {
            assert!(while_running, "job was mid-run when cancelled");
            assert!(
                completed_iterations >= 1,
                "at least the in-flight iteration completes before the stop"
            );
            assert!(
                completed_iterations < 200,
                "cancellation must stop the run early"
            );
        }
        other => panic!("expected Cancelled mid-run, got {other:?}"),
    }
    let stats = front.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 0);
    // The iterations that did run published their memo entries: a cancelled
    // tenant still warms the store for everyone else.
    assert!(
        stats.store.inserts > 0,
        "cancelled job must leave its memo entries published"
    );
}

#[test]
fn completed_job_through_serve_front_matches_run_memoized() {
    let config = tiny_config();
    let (reference, _) = MlrPipeline::new(config).run_memoized();

    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        ..RuntimeConfig::matching(&config)
    });
    let report = front
        .submit(
            ServeRequest::new("deterministic", config)
                .with_deadline(Deadline::within(Duration::from_secs(600))),
        )
        .unwrap()
        .wait_report()
        .expect("generous deadline: the job completes");
    let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(reference.reconstruction.as_slice()),
        bits(report.reconstruction.as_slice()),
        "a completed serving job must be bit-identical to run_memoized"
    );
    let stats = front.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.deadline.met, 1);
    assert_eq!(stats.deadline.missed, 0);
    assert_eq!(stats.deadline_miss_rate(), 0.0);
    // Slack percentiles come from the one decided job: positive, and below
    // the full budget.
    assert!(stats.deadline.slack_p50_seconds > 0.0);
    assert!(stats.deadline.slack_p50_seconds < 600.0);
    assert_eq!(
        stats.deadline.slack_p50_seconds,
        stats.deadline.slack_p99_seconds
    );
}

#[test]
fn handles_are_tickets_not_one_shot_channels() {
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        ..RuntimeConfig::matching(&tiny_config())
    });
    let blocker = front
        .submit(ServeRequest::new("blocker", blocker_config()))
        .unwrap();
    spin_until("blocker to start running", || {
        blocker.phase() == JobPhase::Running
    });
    let queued = front
        .submit(ServeRequest::new("queued", tiny_config()))
        .unwrap();
    // While the worker is held by the blocker, the queued job's ticket
    // polls as pending — repeatedly, without consuming anything.
    assert!(queued.try_wait().is_none());
    assert!(queued.try_wait().is_none());
    assert!(queued.wait_timeout(Duration::from_millis(10)).is_none());
    assert_eq!(queued.phase(), JobPhase::Queued);
    assert!(blocker.wait().is_completed());
    // Now the queued job runs; both poll styles observe the same terminal
    // status, and the handle stays usable afterwards.
    let status = queued
        .wait_timeout(Duration::from_secs(60))
        .expect("job finishes well within a minute");
    assert!(status.is_completed());
    assert!(queued.try_wait().expect("still resolved").is_completed());
    assert_eq!(queued.phase(), JobPhase::Done);
    let stats = front.shutdown();
    assert_eq!(stats.completed, 2);
}

#[test]
fn proactive_sweep_expires_queued_jobs_without_a_worker() {
    // One worker held by a long blocker; the victim's deadline passes while
    // it is still queued. With the proactive sweep on, the victim must
    // resolve `Expired` *while the blocker is still running* — no worker
    // ever touches it — and the sweep is visible in the `swept_expired`
    // telemetry counter.
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 4,
        telemetry: true,
        expiry_sweep: Some(Duration::from_millis(2)),
        ..RuntimeConfig::matching(&tiny_config())
    });
    let blocker = front
        .submit(ServeRequest::new("blocker", blocker_config()))
        .unwrap();
    spin_until("blocker to start running", || {
        blocker.phase() == JobPhase::Running
    });
    let victim = front
        .submit(
            ServeRequest::new("victim", tiny_config())
                .with_deadline(Deadline::within(Duration::from_millis(20))),
        )
        .unwrap();
    // Resolved in place by the sweeper: the worker is demonstrably still
    // busy with the blocker when the victim's ticket settles.
    spin_until("sweeper to expire the victim", || {
        victim.phase() == JobPhase::Done
    });
    assert_eq!(
        blocker.phase(),
        JobPhase::Running,
        "victim must be swept while the worker is still held"
    );
    match victim.wait() {
        JobStatus::Expired {
            while_running,
            late_seconds,
            completed_iterations,
        } => {
            assert!(!while_running, "swept job must never run");
            assert!(late_seconds >= 0.0);
            assert_eq!(completed_iterations, 0);
        }
        other => panic!("expected Expired, got {other:?}"),
    }
    let snapshot = front.telemetry().snapshot().expect("telemetry is enabled");
    assert_eq!(
        snapshot
            .metrics
            .counter(mlr_telemetry::CounterId::SweptExpired),
        1,
        "the sweep (not the pop-time backstop) must have resolved the victim"
    );
    assert!(blocker.wait().is_completed());
    let stats = front.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.deadline.submitted, 1);
    assert_eq!(stats.deadline.missed, 1);
    assert!(stats.deadline.slack_p50_seconds <= 0.0);
}

#[test]
fn mixed_priorities_and_deadlines_resolve_deterministically() {
    // One worker held by a blocker; behind it, a mix of priorities where
    // the top-priority entry is already expired and a mid-priority entry is
    // cancelled while queued. The expired/cancelled entries never run; the
    // rest run in priority order and produce full, finite reconstructions.
    let config = tiny_config();
    let front = ServeFront::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 8,
        ..RuntimeConfig::matching(&config)
    });
    let blocker = front
        .submit(ServeRequest::new("blocker", blocker_config()))
        .unwrap();
    spin_until("blocker to start running", || {
        blocker.phase() == JobPhase::Running
    });

    let expired_interactive = front
        .submit(
            ServeRequest::new("expired-interactive", config)
                .with_priority(Priority::Interactive)
                .with_deadline(Deadline::within(Duration::ZERO)),
        )
        .unwrap();
    let cancelled_normal = front
        .submit(ServeRequest::new("cancelled-normal", config))
        .unwrap();
    let live_normal = front
        .submit(
            ServeRequest::new("live-normal", config)
                .with_deadline(Deadline::within(Duration::from_secs(600))),
        )
        .unwrap();
    let live_batch = front
        .submit(ServeRequest::new("live-batch", config).with_priority(Priority::Batch))
        .unwrap();
    assert!(cancelled_normal.cancel());

    assert!(matches!(
        expired_interactive.wait(),
        JobStatus::Expired {
            while_running: false,
            ..
        }
    ));
    assert!(matches!(
        cancelled_normal.wait(),
        JobStatus::Cancelled {
            while_running: false,
            ..
        }
    ));
    let normal_report = live_normal.wait_report().expect("normal job completes");
    let batch_report = live_batch.wait_report().expect("batch job completes");
    // Jobs that did run are untouched by the cancelled/expired traffic
    // around them: both ran every configured iteration over the shared
    // store to a finite reconstruction.
    for report in [&normal_report, &batch_report] {
        assert_eq!(report.loss.len(), 4);
        assert!(report
            .reconstruction
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
    }
    assert!(blocker.wait().is_completed());

    let stats = front.shutdown();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.deadline.submitted, 2);
    assert_eq!(stats.deadline.met, 1);
    assert_eq!(stats.deadline.missed, 1);
}
