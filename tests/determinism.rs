//! Schedule-perturbation determinism harness.
//!
//! The memoized executor's two-phase batch schedule claims the parallel
//! read-only phase is pure with respect to the ordered commit: thread count
//! and block completion order shape wall time only, never the
//! reconstruction. The thread-count half is pinned by `tests/parallel.rs`;
//! this harness attacks the *ordering* half directly. With
//! `with_schedule_perturbation(seed)` armed, every parallel-phase worker
//! runs a deterministic yield storm derived from `(seed, block index)`
//! before and after its block, forcing adversarial relative start and
//! completion orderings — blocks finishing reversed, interleaved, bunched —
//! while computing exactly the same work. Every seed × thread-count cell
//! must reproduce the sequential run bit-for-bit, hit counts included; any
//! divergence means schedule-dependent state leaked into the read-only
//! phase (a probe that wrote, a commit that read racing state).
//!
//! The final test re-runs the sweep against a fault-armed distributed
//! store: an active [`FaultPlan`](mlr_sim::faults::FaultPlan) must not
//! open a schedule-dependence hole (faults fire on logical ticks, and
//! ticks advance with the ordered commit, never with thread timing).

use mlr_core::{MlrConfig, MlrPipeline};
use mlr_memo::{DistributedMemoDb, NodeTopology};
use mlr_sim::faults::FaultPlan;
use std::sync::Arc;

fn base_config() -> MlrConfig {
    MlrConfig::quick(12, 8).with_iterations(4)
}

fn bits(reconstruction: &[f64]) -> Vec<u64> {
    reconstruction.iter().map(|v| v.to_bits()).collect()
}

/// Runs one reconstruction at `threads` chunk threads, with the
/// perturbation checker armed when `seed` is `Some`, and returns the
/// reconstruction bits plus the (db, cache, failed) hit counts.
fn run(threads: usize, seed: Option<u64>) -> (Vec<u64>, (u64, u64, u64)) {
    let pipeline = MlrPipeline::new(base_config().with_intra_job_threads(threads));
    let (result, executor) = match seed {
        Some(seed) => pipeline.run_memoized_perturbed(seed),
        None => pipeline.run_memoized(),
    };
    let total = executor.stats().total();
    (
        bits(result.reconstruction.as_slice()),
        (total.db_hits, total.cache_hits, total.failed_memo),
    )
}

#[test]
fn perturbed_schedules_commit_bit_identically() {
    let (reference, ref_hits) = run(1, None);
    assert!(
        ref_hits.0 + ref_hits.1 > 0,
        "schedule never hits — the sweep would be vacuous: {ref_hits:?}"
    );
    for threads in [2, 4] {
        for seed in [0x5EED_0001_u64, 0xC0FF_EE42, 0xDEAD_BEA7] {
            let (perturbed, hits) = run(threads, Some(seed));
            assert_eq!(
                perturbed, reference,
                "seed {seed:#x} at {threads} threads changed the reconstruction"
            );
            assert_eq!(
                hits, ref_hits,
                "seed {seed:#x} at {threads} threads changed the hit counts"
            );
        }
    }
}

/// Like [`run`], but against a fresh fault-armed distributed store under
/// `plan`. Returns the reconstruction bits, the executor hit counts, and
/// the fault footprint the store recorded.
fn run_faulted(
    threads: usize,
    seed: Option<u64>,
    plan: &FaultPlan,
) -> (Vec<u64>, (u64, u64, u64), mlr_memo::FaultStats) {
    const SHARDS: usize = 8;
    let pipeline = MlrPipeline::new(base_config().with_intra_job_threads(threads));
    let store = Arc::new(DistributedMemoDb::with_faults(
        pipeline.build_shared_store(SHARDS),
        NodeTopology::with_nodes(4),
        plan.clone(),
    ));
    let (result, executor) = match seed {
        Some(seed) => pipeline.run_memoized_perturbed_with_store(store.clone(), 1, seed),
        None => pipeline.run_memoized_with_store(store.clone(), 1),
    };
    let total = executor.stats().total();
    let faults = store.fault_stats().expect("plan armed").clone();
    (
        bits(result.reconstruction.as_slice()),
        (total.db_hits, total.cache_hits, total.failed_memo),
        faults,
    )
}

#[test]
fn perturbed_schedules_stay_deterministic_under_an_active_fault_plan() {
    // Measure the run's logical horizon fault-free, then park node 0 in a
    // crash window spanning the first half of the access stream — the
    // restart purge lands mid-run, where a schedule-dependence hole would
    // be most visible.
    let probe = MlrPipeline::new(base_config());
    let probe_store = probe.build_shared_store(8);
    let _ = probe.run_memoized_with_store(probe_store.clone(), 1);
    let horizon = probe_store.current_tick();
    assert!(horizon > 0, "probe run never touched the store");
    let plan = FaultPlan::new(11).crash_window(0, 1, horizon / 2);

    let (reference, ref_hits, ref_faults) = run_faulted(1, None, &plan);
    assert!(
        ref_faults.crashes > 0 && ref_faults.restarts > 0,
        "the crash window never fired: {ref_faults:?}"
    );
    for threads in [2, 4] {
        for seed in [0x5EED_0001_u64, 0xC0FF_EE42, 0xDEAD_BEA7] {
            let (perturbed, hits, faults) = run_faulted(threads, Some(seed), &plan);
            assert_eq!(
                perturbed, reference,
                "seed {seed:#x} at {threads} threads changed the faulted reconstruction"
            );
            assert_eq!(
                hits, ref_hits,
                "seed {seed:#x} at {threads} threads changed the faulted hit counts"
            );
            assert_eq!(
                faults, ref_faults,
                "seed {seed:#x} at {threads} threads changed the fault footprint"
            );
        }
    }
}

#[test]
fn perturbation_at_one_thread_is_exactly_the_sequential_run() {
    // With a single worker the yield storms have nothing to reorder; the
    // armed executor must be indistinguishable from the plain one.
    let (reference, ref_hits) = run(1, None);
    let (perturbed, hits) = run(1, Some(0x0DDB_A115));
    assert_eq!(perturbed, reference);
    assert_eq!(hits, ref_hits);
}
