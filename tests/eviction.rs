//! Integration tests for the capacity-governance layer: determinism of
//! eviction under a fixed budget and schedule, the budget invariant under
//! real thread contention, and TTL unreachability — the contracts
//! `fig19_eviction` and the runtime build on.

use mlr_core::{MlrConfig, MlrPipeline};
use mlr_lamino::FftOpKind;
use mlr_math::Complex64;
use mlr_memo::{
    recompute_cost_estimate, CapacityBudget, EvictionPolicyKind, MemoDbConfig, MemoStore,
    Provenance, QueryOutcome, ShardedMemoDb,
};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use std::sync::Arc;

fn tiny_encoder_config() -> mlr_memo::EncoderConfig {
    mlr_memo::EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 8,
        learning_rate: 1e-3,
    }
}

fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
        })
        .collect()
}

/// Replays `jobs` sequential reconstructions over one shared store and
/// returns the reconstructions' raw bits.
fn replay(pipeline: &MlrPipeline, store: Arc<ShardedMemoDb>, jobs: usize) -> Vec<Vec<u64>> {
    (1..=jobs)
        .map(|job| {
            let shared: Arc<dyn MemoStore> = Arc::clone(&store) as Arc<dyn MemoStore>;
            let (result, _) = pipeline.run_memoized_with_store(shared, job as u64);
            result
                .reconstruction
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

/// Same budget + same schedule ⇒ identical reconstructions, identical
/// eviction counts — and independent of the shard layout.
#[test]
fn eviction_is_deterministic_for_a_fixed_schedule() {
    let config = MlrConfig::quick(12, 8).with_iterations(4);
    let pipeline = MlrPipeline::new(config);
    let jobs = 3;

    // Measure the unbounded footprint, then cap at half of it.
    let probe = pipeline.build_shared_store(8);
    let _ = replay(&pipeline, Arc::clone(&probe), jobs);
    let cap = probe.stats().resident_bytes / 2;
    assert!(cap > 0);
    let budget = CapacityBudget::bytes(cap);

    let store_a = pipeline.build_shared_store_with(8, budget, EvictionPolicyKind::CostAware);
    let recon_a = replay(&pipeline, Arc::clone(&store_a), jobs);
    assert!(
        store_a.stats().evictions > 0,
        "half budget must evict — test is vacuous"
    );
    // Same layout, fresh store: bit-identical replay and identical counters.
    let store_b = pipeline.build_shared_store_with(8, budget, EvictionPolicyKind::CostAware);
    let recon_b = replay(&pipeline, Arc::clone(&store_b), jobs);
    assert_eq!(recon_a, recon_b, "replay diverged under eviction");
    assert_eq!(store_a.stats().evictions, store_b.stats().evictions);
    assert_eq!(store_a.stats().hits, store_b.stats().hits);
    // Different shard counts: eviction must be layout-independent.
    for shards in [1, 4] {
        let store = pipeline.build_shared_store_with(shards, budget, EvictionPolicyKind::CostAware);
        let recon = replay(&pipeline, Arc::clone(&store), jobs);
        assert_eq!(recon_a, recon, "{shards} shards diverged under eviction");
        assert_eq!(store.stats().evictions, store_a.stats().evictions);
    }
}

/// A bounded single job through the runtime still satisfies the pinned
/// determinism contract against `run_memoized` with the same bounded
/// configuration.
#[test]
fn bounded_single_job_through_runtime_matches_run_memoized() {
    let config = MlrConfig::quick(12, 8).with_iterations(4);
    // Cap at half the private database's unbounded footprint.
    let probe = MlrPipeline::new(config);
    let (_, probe_exec) = probe.run_memoized();
    let cap = probe_exec.store().resident_bytes() / 2;
    let bounded =
        config.with_memo_budget(CapacityBudget::bytes(cap), EvictionPolicyKind::CostAware);

    let pipeline = MlrPipeline::new(bounded);
    let (reference, reference_exec) = pipeline.run_memoized();
    assert!(
        reference_exec.store().stats().evictions > 0,
        "budget never bound — test is vacuous"
    );

    let runtime = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        ..RuntimeConfig::matching(&bounded)
    });
    let report = runtime
        .submit(ReconJob::new("bounded-determinism", bounded))
        .unwrap()
        .wait_report()
        .expect("bounded job completes");
    let stats = runtime.shutdown();
    assert!(stats.store.evictions > 0);
    assert!(stats.store.peak_resident_bytes <= cap);

    let err = mlr_math::norms::relative_error(&reference.reconstruction, &report.reconstruction);
    assert!(
        err < 1e-12,
        "bounded runtime diverged from run_memoized: {err}"
    );
}

/// 8 threads hammer one bounded store concurrently; the budget must hold at
/// every observable point — after each thread's own insert, and at the
/// post-enforcement high-water mark.
#[test]
fn budget_never_exceeded_across_eight_concurrent_jobs() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50;
    const CAP_BYTES: u64 = 64 * 1024;

    let store = Arc::new(ShardedMemoDb::with_shards(
        MemoDbConfig {
            tau: 0.9,
            budget: CapacityBudget::bytes(CAP_BYTES).with_stripe_bytes(CAP_BYTES / 2),
            eviction: EvictionPolicyKind::Lru,
            ..Default::default()
        },
        tiny_encoder_config(),
        1,
        8,
    ));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let loc = (t * 10_000 + i) as usize;
                    let input = chunk(1.0 + t as f64, 0.1 * i as f64, 128);
                    let key = store.encode(&input);
                    let origin = Provenance {
                        job: t + 1,
                        iteration: i as usize,
                    };
                    store.insert(
                        FftOpKind::Fu2D,
                        loc,
                        &input,
                        key.clone(),
                        chunk(2.0, 0.5, 64),
                        origin,
                        recompute_cost_estimate(FftOpKind::Fu2D, input.len()),
                    );
                    // The published footprint is only updated post-
                    // enforcement, so every observation must be ≤ cap.
                    let resident = store.resident_bytes();
                    assert!(
                        resident <= CAP_BYTES,
                        "budget exceeded after insert (t={t}, i={i}): {resident} > {CAP_BYTES}"
                    );
                    // Keep some traffic on the query path too.
                    let origin_q = Provenance {
                        job: t + 1,
                        iteration: i as usize + 1,
                    };
                    let _ = store.query_with_key(FftOpKind::Fu2D, loc, &input, key, origin_q);
                }
            });
        }
    });

    let stats = store.stats();
    assert_eq!(stats.inserts, THREADS * PER_THREAD);
    assert!(stats.evictions > 0, "cap never bound — test is vacuous");
    assert!(
        stats.peak_resident_bytes <= CAP_BYTES,
        "high-water mark {} exceeded the cap {CAP_BYTES}",
        stats.peak_resident_bytes
    );
    assert!(stats.resident_bytes <= CAP_BYTES);
    // Inserts minus evictions/expirations is what remains.
    assert_eq!(
        stats.entries as u64,
        stats.inserts - stats.evictions - stats.expirations
    );
}

/// TTL entries must be unreachable once their age in job-iterations exceeds
/// the configured lifetime, and get reclaimed.
#[test]
fn ttl_entries_are_unreachable_after_expiry() {
    let store = ShardedMemoDb::with_shards(
        MemoDbConfig {
            tau: 0.9,
            eviction: EvictionPolicyKind::Ttl { ttl_epochs: 3 },
            ..Default::default()
        },
        tiny_encoder_config(),
        1,
        4,
    );
    let input = chunk(1.0, 0.0, 128);
    let key = store.encode(&input);
    store.insert(
        FftOpKind::Fu2D,
        0,
        &input,
        key.clone(),
        chunk(2.0, 0.5, 32),
        Provenance {
            job: 1,
            iteration: 0,
        },
        recompute_cost_estimate(FftOpKind::Fu2D, input.len()),
    );

    // Within the TTL (3 epochs): reachable, including cross-job.
    store.advance_epoch();
    match store.query_with_key(
        FftOpKind::Fu2D,
        0,
        &input,
        key.clone(),
        Provenance {
            job: 2,
            iteration: 0,
        },
    ) {
        QueryOutcome::Hit { .. } => {}
        QueryOutcome::Miss { .. } => panic!("entry must be reachable within its TTL"),
    }

    // Age past the TTL.
    for _ in 0..4 {
        store.advance_epoch();
    }
    assert_eq!(store.epoch(), 5);
    match store.query_with_key(
        FftOpKind::Fu2D,
        0,
        &input,
        key,
        Provenance {
            job: 3,
            iteration: 0,
        },
    ) {
        QueryOutcome::Miss { .. } => {}
        QueryOutcome::Hit { .. } => panic!("expired entry served a query"),
    }
    let stats = store.stats();
    assert_eq!(stats.expirations, 1);
    assert_eq!(stats.entries, 0);
    assert_eq!(store.resident_bytes(), 0);
}
