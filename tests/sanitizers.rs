#![cfg(feature = "lockcheck")]
//! Self-tests for the lock-order sanitizer, run via
//! `cargo test -p mlr --features lockcheck --test sanitizers`.
//!
//! The `lockcheck` feature forwards to the vendored `parking_lot` shim,
//! which then maintains a per-thread held-lock stack and a global
//! acquisition-order graph: acquiring B while holding A records the edge
//! A → B, and any later acquisition that would close a cycle panics
//! immediately — at acquisition time, with the backtraces of both sides —
//! instead of deadlocking some unlucky future run. These tests plant the
//! violations deliberately; the rest of the suite passing under the same
//! feature is the evidence the real locking order is cycle-free.

use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn lockcheck_is_compiled_in() {
    assert!(
        parking_lot::lockcheck_enabled(),
        "this test binary only makes sense with --features lockcheck"
    );
}

#[test]
fn consistent_nesting_passes() {
    let outer = Mutex::new(0u32);
    let inner = Mutex::new(0u32);
    for _ in 0..3 {
        let mut g_outer = outer.lock();
        let mut g_inner = inner.lock();
        *g_outer += 1;
        *g_inner += 1;
    }
}

#[test]
#[should_panic(expected = "lock-order inversion")]
fn planted_lock_inversion_is_caught() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    // Thread 1 establishes the order A → B and exits cleanly.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .ok();
    }
    // B → A on this thread closes the cycle: the sanitizer panics at
    // acquisition time — no actual deadlock has to occur.
    let _gb = b.lock();
    let _ga = a.lock();
}

#[test]
#[should_panic(expected = "re-entrant acquisition")]
fn planted_reentrant_acquisition_is_caught() {
    let m = Mutex::new(0u32);
    let _g1 = m.lock();
    let _g2 = m.lock();
}
