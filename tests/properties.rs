//! Property-based integration tests over the numerical substrates.
//!
//! Originally written against `proptest`; this offline build has no access
//! to crates.io, so the same properties are exercised as deterministic
//! seeded sweeps (32 cases per property, matching the original
//! `ProptestConfig::with_cases(32)`), which also makes failures trivially
//! reproducible.

use mlr_fft::fft::{dft_naive, fft, ifft, Direction};
use mlr_lamino::{ChunkGrid, DirectExecutor, LaminoGeometry, LaminoOperator};
use mlr_math::norms::{cosine_similarity_c, l2_norm_c, max_abs_diff_c, scale_aware_similarity_c};
use mlr_math::rng::seeded;
use mlr_math::{Array3, Complex64};
use rand::Rng;

const CASES: u64 = 32;

/// A random complex vector with components in `[-1, 1)`, the distribution
/// the original proptest strategy used.
fn complex_vec(len: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = seeded(seed);
    (0..len)
        .map(|_| Complex64::new(2.0 * rng.gen::<f64>() - 1.0, 2.0 * rng.gen::<f64>() - 1.0))
        .collect()
}

#[test]
fn fft_roundtrip_recovers_signal() {
    for case in 0..CASES {
        let signal = complex_vec(64, 100 + case);
        let back = ifft(&fft(&signal));
        assert!(
            max_abs_diff_c(&back, &signal) < 1e-9,
            "roundtrip error too large (case {case})"
        );
    }
}

#[test]
fn fft_matches_naive_dft() {
    for case in 0..CASES {
        let signal = complex_vec(24, 200 + case);
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        assert!(
            max_abs_diff_c(&fast, &slow) < 1e-8,
            "fft disagrees with naive DFT (case {case})"
        );
    }
}

#[test]
fn fft_preserves_energy() {
    for case in 0..CASES {
        let signal = complex_vec(32, 300 + case);
        let spectrum = fft(&signal);
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spectrum.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!(
            (time_energy - freq_energy).abs() <= 1e-9 * time_energy.max(1.0),
            "Parseval violated (case {case}): {time_energy} vs {freq_energy}"
        );
    }
}

#[test]
fn similarity_measures_are_bounded() {
    for case in 0..CASES {
        let a = complex_vec(48, 400 + case);
        let b = complex_vec(48, 500 + case);
        let cs = cosine_similarity_c(&a, &b);
        assert!(
            (-1.0..=1.0).contains(&cs),
            "cosine out of range (case {case}): {cs}"
        );
        let sas = scale_aware_similarity_c(&a, &b);
        assert!(
            sas <= cs.abs() + 1e-12,
            "scale-aware exceeds cosine (case {case})"
        );
        assert!(
            scale_aware_similarity_c(&a, &a) > 0.999 || l2_norm_c(&a) == 0.0,
            "self-similarity must be ~1 (case {case})"
        );
    }
}

#[test]
fn chunk_grid_partitions_axis() {
    let mut rng = seeded(600);
    for case in 0..CASES {
        let extent = rng.gen_range(1usize..200);
        let chunk = rng.gen_range(1usize..40);
        let grid = ChunkGrid::new(extent, chunk);
        let mut covered = vec![0u32; extent];
        for loc in grid.iter() {
            for c in covered.iter_mut().skip(loc.start).take(loc.len) {
                *c += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "grid does not partition extent {extent} / chunk {chunk} (case {case})"
        );
    }
}

#[test]
fn laminography_operator_adjointness_holds_for_random_volumes() {
    // A single heavier check: <L u, d> == <u, L* d>.
    let geometry = LaminoGeometry::cube(8, 5, 28.0);
    let op = LaminoOperator::new(geometry, 4);
    let mut rng_state = 0x1234_5678u64;
    let mut next = || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let vol_shape = op.geometry().volume_shape();
    let data_shape = op.geometry().data_shape();
    let u = Array3::from_vec(vol_shape, (0..vol_shape.len()).map(|_| next()).collect());
    let d = Array3::from_vec(data_shape, (0..data_shape.len()).map(|_| next()).collect());
    let lu = op.forward_with(&u, &DirectExecutor);
    let ltd = op.adjoint_with(&d, &DirectExecutor);
    let lhs = lu.dot(&d);
    let rhs = u.dot(&ltd);
    assert!(
        (lhs - rhs).abs() < 1e-7 * lhs.abs().max(1.0),
        "{lhs} vs {rhs}"
    );
}
