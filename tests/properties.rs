//! Property-based integration tests over the numerical substrates.
use mlr_fft::fft::{dft_naive, fft, ifft, Direction};
use mlr_lamino::{ChunkGrid, DirectExecutor, LaminoGeometry, LaminoOperator};
use mlr_math::norms::{cosine_similarity_c, l2_norm_c, max_abs_diff_c, scale_aware_similarity_c};
use mlr_math::{Array3, Complex64};
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len..=len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fft_roundtrip_recovers_signal(signal in complex_vec(64)) {
        let back = ifft(&fft(&signal));
        prop_assert!(max_abs_diff_c(&back, &signal) < 1e-9);
    }

    #[test]
    fn fft_matches_naive_dft(signal in complex_vec(24)) {
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        prop_assert!(max_abs_diff_c(&fast, &slow) < 1e-8);
    }

    #[test]
    fn fft_preserves_energy(signal in complex_vec(32)) {
        let spectrum = fft(&signal);
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spectrum.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn similarity_measures_are_bounded(a in complex_vec(48), b in complex_vec(48)) {
        let cs = cosine_similarity_c(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&cs));
        let sas = scale_aware_similarity_c(&a, &b);
        prop_assert!(sas <= cs.abs() + 1e-12);
        prop_assert!(scale_aware_similarity_c(&a, &a) > 0.999 || l2_norm_c(&a) == 0.0);
    }

    #[test]
    fn chunk_grid_partitions_axis(extent in 1usize..200, chunk in 1usize..40) {
        let grid = ChunkGrid::new(extent, chunk);
        let mut covered = vec![0u32; extent];
        for loc in grid.iter() {
            for i in loc.start..loc.start + loc.len {
                covered[i] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }
}

#[test]
fn laminography_operator_adjointness_holds_for_random_volumes() {
    // A single heavier check outside proptest: <L u, d> == <u, L* d>.
    let geometry = LaminoGeometry::cube(8, 5, 28.0);
    let op = LaminoOperator::new(geometry, 4);
    let mut rng_state = 0x1234_5678u64;
    let mut next = || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let vol_shape = op.geometry().volume_shape();
    let data_shape = op.geometry().data_shape();
    let u = Array3::from_vec(vol_shape, (0..vol_shape.len()).map(|_| next()).collect());
    let d = Array3::from_vec(data_shape, (0..data_shape.len()).map(|_| next()).collect());
    let lu = op.forward_with(&u, &DirectExecutor);
    let ltd = op.adjoint_with(&d, &DirectExecutor);
    let lhs = lu.dot(&d);
    let rhs = u.dot(&ltd);
    assert!((lhs - rhs).abs() < 1e-7 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
}
