//! Contract tests for the deterministic fault-injection layer.
//!
//! The fault layer's whole claim is that an injected fault is *only* a
//! performance event: a down node degrades a hit into a recompute, a
//! restart purges warm state, a degraded link slows a probe — but the
//! reconstruction a job returns is untouched, and the entire faulted
//! execution replays bit-identically from the `FaultPlan` seed alone.
//! These tests pin that contract across the axes that could plausibly
//! break it:
//!
//! * **value neutrality** — every faulted run reconstructs bit-identically
//!   to the fault-free baseline, for hand-placed and seeded plans alike;
//! * **thread independence** — the same plan at {1, 2, 4, 8} intra-job
//!   threads produces the same outputs *and* the same [`FaultStats`]
//!   (crashes, restarts, lost entries, replica saves, recovery clock);
//! * **node independence of correctness** — the same plan over {1, 2, 4}
//!   memory nodes never changes the reconstruction (the fault footprint
//!   may differ — placement moves — but the values may not);
//! * **replay determinism** — running the identical plan twice yields
//!   identical outputs, identical hit counters, identical `FaultStats`.
//!
//! Fault windows are placed in logical store ticks measured from a
//! fault-free warm run's own job boundaries, never from the wall clock.

use mlr_core::MlrConfig;
use mlr_memo::{FaultStats, NodeTopology};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use mlr_sim::faults::FaultPlan;

const JOBS: usize = 4;

fn config(threads: usize) -> MlrConfig {
    // τ = 0.9999 admits only exact (bit-identical input) hits, so a fault
    // that degrades a hit into a recompute produces the very value the hit
    // would have served — the precondition for the bit-identity contract.
    // At looser τ a hit may serve an *approximate* neighbour, and a
    // fault-forced recompute legitimately differs in the low bits.
    MlrConfig::quick(12, 8)
        .with_iterations(3)
        .with_tau(0.9999)
        .with_intra_job_threads(threads)
}

struct Outcome {
    /// Per-job reconstruction bits.
    bits: Vec<Vec<u64>>,
    faults: Option<FaultStats>,
    hits: u64,
    /// Store tick at each job boundary (logical time).
    job_end_ticks: Vec<u64>,
}

/// Replays the standard workload — `JOBS` identical jobs back to back on
/// one worker over an `nodes`-node topology — optionally under a plan.
fn run(threads: usize, nodes: usize, plan: Option<FaultPlan>) -> Outcome {
    let config = config(threads);
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: JOBS + 1,
        topology: Some(NodeTopology::with_nodes(nodes)),
        fault_plan: plan,
        ..RuntimeConfig::matching(&config)
    });
    let mut bits = Vec::with_capacity(JOBS);
    let mut job_end_ticks = Vec::with_capacity(JOBS);
    for i in 0..JOBS {
        let report = rt
            .submit(ReconJob::new(format!("job-{i}"), config))
            .expect("queue has room")
            .wait_report()
            .expect("job completes");
        bits.push(
            report
                .reconstruction
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        );
        job_end_ticks.push(
            rt.distributed()
                .expect("runtime was configured with a topology")
                .inner()
                .current_tick(),
        );
    }
    let stats = rt.shutdown();
    Outcome {
        bits,
        faults: stats.fault_stats().cloned(),
        hits: stats.store.hits,
        job_end_ticks,
    }
}

/// A crash-and-restart of node 0 spanning the third job, placed from the
/// warm run's own boundaries so every sweep cell sees the same schedule.
fn crash_plan(ticks: &[u64]) -> FaultPlan {
    FaultPlan::new(7).crash_window(0, ticks[1], ticks[2])
}

#[test]
fn faulted_outputs_are_bit_identical_across_threads_and_nodes() {
    let baseline = run(1, 4, None);
    assert!(
        baseline.hits > 0,
        "workload never hits the store — the sweep would be vacuous"
    );
    let plan = crash_plan(&baseline.job_end_ticks);

    for nodes in [1usize, 2, 4] {
        // The single-thread cell is the per-node-count reference for the
        // fault footprint; placement moves with the node count, so the
        // footprint is only required to agree across *thread* counts.
        let reference = run(1, nodes, Some(plan.clone()));
        assert_eq!(
            reference.bits, baseline.bits,
            "the crash plan changed the reconstruction at {nodes} nodes"
        );
        let reference_faults = reference.faults.clone().expect("plan armed");
        assert!(
            reference_faults.crashes > 0 && reference_faults.restarts > 0,
            "the crash window never fired at {nodes} nodes: {reference_faults:?}"
        );
        for threads in [2usize, 4, 8] {
            let outcome = run(threads, nodes, Some(plan.clone()));
            assert_eq!(
                outcome.bits, baseline.bits,
                "{threads} threads x {nodes} nodes diverged from the fault-free baseline"
            );
            assert_eq!(
                outcome.faults.as_ref(),
                Some(&reference_faults),
                "{threads} threads changed the fault footprint at {nodes} nodes"
            );
        }
    }
}

#[test]
fn fault_replay_is_deterministic() {
    let baseline = run(1, 4, None);
    let plan = crash_plan(&baseline.job_end_ticks);
    let first = run(2, 4, Some(plan.clone()));
    let second = run(2, 4, Some(plan));
    assert_eq!(first.bits, second.bits, "replay changed the outputs");
    assert_eq!(first.hits, second.hits, "replay changed the hit counter");
    assert_eq!(first.faults, second.faults, "replay changed the footprint");
    assert_eq!(
        first.job_end_ticks, second.job_end_ticks,
        "replay changed the logical clock"
    );
}

#[test]
fn seeded_plans_preserve_the_reconstruction() {
    let baseline = run(1, 4, None);
    let horizon = *baseline
        .job_end_ticks
        .last()
        .expect("workload ran at least one job");
    let shards = RuntimeConfig::matching(&config(1)).shards;
    for seed in [1u64, 42, 0xFA11] {
        let plan = FaultPlan::seeded(seed, 4, shards, horizon);
        assert!(!plan.is_empty(), "seeded plan {seed} generated no events");
        let outcome = run(1, 4, Some(plan));
        assert_eq!(
            outcome.bits, baseline.bits,
            "seeded plan {seed} changed the reconstruction"
        );
    }
}
