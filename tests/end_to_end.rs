//! End-to-end integration tests spanning the whole workspace: phantom →
//! projections → exact and memoized ADMM-TV reconstruction → report, plus the
//! offload planner and scaling model wired to the same workload description.
use mlr_cluster::ScalingModel;
use mlr_core::{MlrConfig, MlrPipeline};
use mlr_lamino::{LaminoGeometry, LaminoOperator};
use mlr_offload::{simulate::simulate_all, IterationProfile, OffloadPlanner};
use mlr_sim::workload::{AdmmWorkload, ProblemSize};
use mlr_sim::CostModel;
use mlr_solver::{AdmmConfig, AdmmSolver, LspVariant};

#[test]
fn full_pipeline_memoized_reconstruction_stays_accurate() {
    let config = MlrConfig::quick(12, 8).with_iterations(6);
    let pipeline = MlrPipeline::new(config);
    let report = pipeline.run_comparison();
    assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
    assert!(report.avoided_fraction > 0.0);
    // A stricter threshold must be at least as accurate.
    let strict = MlrPipeline::new(MlrConfig::quick(12, 8).with_iterations(6).with_tau(0.99));
    let strict_report = strict.run_comparison();
    assert!(strict_report.accuracy + 1e-6 >= report.accuracy - 0.05);
}

#[test]
fn algorithm1_and_algorithm2_match_through_the_full_solver() {
    let geometry = LaminoGeometry::cube(10, 6, 30.0);
    let dataset = mlr_lamino::LaminoDataset::simulate(
        geometry.clone(),
        mlr_lamino::PhantomKind::Brain,
        mlr_lamino::ProjectionNoise::None,
        3,
    );
    let op = LaminoOperator::new(geometry, 4);
    let base = AdmmConfig {
        outer_iterations: 3,
        n_inner: 2,
        ..AdmmConfig::default()
    };
    let a = AdmmSolver::new(AdmmConfig {
        variant: LspVariant::Original,
        ..base
    })
    .run(&op, &dataset.projections);
    let b = AdmmSolver::new(AdmmConfig {
        variant: LspVariant::Cancelled,
        ..base
    })
    .run(&op, &dataset.projections);
    let err = mlr_math::norms::relative_error(&a.reconstruction, &b.reconstruction);
    assert!(
        err < 1e-6,
        "operation cancellation changed the result: {err}"
    );
}

#[test]
fn offload_planner_and_scaling_model_agree_with_workload() {
    let workload = AdmmWorkload::new(ProblemSize::paper_1k());
    let cost = CostModel::polaris(1);
    let profile = IterationProfile::from_workload(&workload, &cost);
    let planner = OffloadPlanner::new(&profile, &cost);
    let (_, eval) = planner.best_plan();
    assert!(eval.memory_saving > 0.1);
    assert!(eval.mt > 1.0);

    let traces = simulate_all(&profile, &cost, 2);
    assert!(
        traces[3].mt > traces[1].mt,
        "planned offload must beat greedy"
    );

    let scaling = ScalingModel::new(workload, 10);
    let p1 = scaling.point(1);
    let p4 = scaling.point(4);
    assert!(p4.overall_seconds < p1.overall_seconds);
}
