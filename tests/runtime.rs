//! Integration tests for the multi-job runtime and the shared sharded
//! memoization store: concurrency safety of `ShardedMemoDb` under real
//! thread contention, and the determinism contract that a single job run
//! through the runtime reconstructs identically to the classic
//! single-tenant pipeline.

use mlr_core::{MlrConfig, MlrPipeline};
use mlr_lamino::FftOpKind;
use mlr_math::Complex64;
use mlr_memo::{MemoDbConfig, MemoStore, Provenance, QueryOutcome, ShardedMemoDb};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tiny_encoder_config() -> mlr_memo::EncoderConfig {
    mlr_memo::EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 8,
        learning_rate: 1e-3,
    }
}

fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
        })
        .collect()
}

/// 8 threads hammer one store concurrently — each inserting into its own
/// chunk locations, then querying both its own entries (must hit) and the
/// previous thread's (cross-job). Afterwards the global counters must agree
/// exactly with what the threads observed: no lost inserts, no lost hit
/// accounting.
#[test]
fn sharded_store_survives_concurrent_insert_query_stress() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 60;

    let store = Arc::new(ShardedMemoDb::with_shards(
        MemoDbConfig {
            tau: 0.9,
            ..Default::default()
        },
        tiny_encoder_config(),
        1,
        8,
    ));
    let observed_hits = Arc::new(AtomicU64::new(0));
    let observed_cross = Arc::new(AtomicU64::new(0));
    let observed_queries = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let observed_hits = Arc::clone(&observed_hits);
            let observed_cross = Arc::clone(&observed_cross);
            let observed_queries = Arc::clone(&observed_queries);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let loc = (t * 10_000 + i) as usize;
                    let input = chunk(1.0 + t as f64, 0.1 * i as f64, 128);
                    let key = store.encode(&input);
                    // Insert at iteration i, then query at iteration i+1:
                    // identical input at the same location must hit.
                    let insert_origin = Provenance {
                        job: t + 1,
                        iteration: i as usize,
                    };
                    store.insert(
                        FftOpKind::Fu2D,
                        loc,
                        &input,
                        key.clone(),
                        chunk(2.0, 0.5, 16),
                        insert_origin,
                        mlr_memo::recompute_cost_estimate(FftOpKind::Fu2D, input.len()),
                    );
                    let query_origin = Provenance {
                        job: t + 1,
                        iteration: i as usize + 1,
                    };
                    observed_queries.fetch_add(1, Ordering::Relaxed);
                    match store.query_with_key(FftOpKind::Fu2D, loc, &input, key, query_origin) {
                        QueryOutcome::Hit { origin, .. } => {
                            assert_eq!(origin, insert_origin);
                            observed_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryOutcome::Miss { .. } => {
                            panic!("own freshly inserted entry must hit (t={t}, i={i})")
                        }
                    }
                    // Probe the previous thread's location space: when its
                    // entry is already there this is a cross-job hit; either
                    // way the accounting must stay consistent.
                    let other_loc = (((t + THREADS - 1) % THREADS) * 10_000 + i) as usize;
                    let other_input = chunk(
                        1.0 + ((t + THREADS - 1) % THREADS) as f64,
                        0.1 * i as f64,
                        128,
                    );
                    let other_key = store.encode(&other_input);
                    observed_queries.fetch_add(1, Ordering::Relaxed);
                    if let QueryOutcome::Hit { origin, .. } = store.query_with_key(
                        FftOpKind::Fu2D,
                        other_loc,
                        &other_input,
                        other_key,
                        query_origin,
                    ) {
                        observed_hits.fetch_add(1, Ordering::Relaxed);
                        if origin.job != query_origin.job {
                            observed_cross.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let stats = store.stats();
    // No lost inserts: every entry is present and accounted for.
    assert_eq!(stats.inserts, THREADS * PER_THREAD);
    assert_eq!(store.len() as u64, THREADS * PER_THREAD);
    assert_eq!(stats.entries as u64, THREADS * PER_THREAD);
    assert_eq!(
        store.shard_sizes().iter().sum::<usize>() as u64,
        THREADS * PER_THREAD
    );
    // Hit accounting matches what the threads saw, exactly.
    assert_eq!(stats.queries, observed_queries.load(Ordering::Relaxed));
    assert_eq!(stats.hits, observed_hits.load(Ordering::Relaxed));
    assert_eq!(stats.cross_job_hits, observed_cross.load(Ordering::Relaxed));
    // Every own-entry query hit, so the rate is at least 1/2.
    assert!(stats.hit_rate() >= 0.5, "hit rate {}", stats.hit_rate());
    assert!(stats.value_bytes > 0);
}

/// The determinism contract: one job through `mlr-runtime` (shared sharded
/// store, worker pool, queue) reconstructs *bit-identically* to
/// `MlrPipeline::run_memoized` with its private database.
#[test]
fn single_job_through_runtime_matches_run_memoized() {
    let config = MlrConfig::quick(12, 8).with_iterations(5);

    let pipeline = MlrPipeline::new(config);
    let (reference, _) = pipeline.run_memoized();

    let runtime = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        ..RuntimeConfig::matching(&config)
    });
    let report = runtime
        .submit(ReconJob::new("determinism", config))
        .unwrap()
        .wait_report()
        .expect("determinism job completes");
    let stats = runtime.shutdown();

    let err = mlr_math::norms::relative_error(&reference.reconstruction, &report.reconstruction);
    assert!(err < 1e-12, "runtime diverged from run_memoized: {err}");
    // Loss trajectories match too.
    let ref_loss = reference.history.loss_series();
    assert_eq!(ref_loss.len(), report.loss.len());
    for ((ia, la), (ib, lb)) in ref_loss.iter().zip(&report.loss) {
        assert_eq!(ia, ib);
        assert!((la - lb).abs() <= 1e-12 * la.abs().max(1.0), "{la} vs {lb}");
    }
    // A lone job can't have cross-job hits.
    assert_eq!(stats.store.cross_job_hits, 0);
    assert!(stats.store.queries > 0);
}

/// Four concurrent jobs over one store: all complete, and the shared store
/// serves cross-job hits that isolated databases cannot.
#[test]
fn concurrent_jobs_benefit_from_shared_store() {
    let config = MlrConfig::quick(12, 8).with_iterations(5);
    let runtime = Runtime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        ..RuntimeConfig::matching(&config)
    });
    let handles: Vec<_> = (0..4)
        .map(|i| {
            runtime
                .submit(ReconJob::new(format!("rep-{i}"), config))
                .unwrap()
        })
        .collect();
    let mut reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait_report().expect("replica job completes"))
        .collect();
    reports.sort_by_key(|r| r.job);

    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 4);
    assert!(
        stats.cross_job_hit_rate() > 0.0,
        "no cross-job reuse: {:?}",
        stats.store
    );

    // Isolated baseline: per-job private databases see zero cross-job hits.
    let (_, iso_exec) = MlrPipeline::new(config).run_memoized();
    assert_eq!(iso_exec.store().stats().cross_job_hits, 0);

    // Every job produced a finite reconstruction of the right shape.
    for r in &reports {
        assert!(r.reconstruction.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(r.loss.len(), 5);
    }
}
