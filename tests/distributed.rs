//! Contract tests for the distributed memo tier (`mlr_memo::distributed`):
//!
//! * **bit-identity** — the distributed store returns the same hits as the
//!   plain `ShardedMemoDb` given the same schedule, for any node count and
//!   any capacity layout (only the modeled latency differs), both driven
//!   directly and through a topology-configured `Runtime`;
//! * **layout independence** — the stripe→node placement is deterministic,
//!   and permuting node ids (capacity order) never changes which entries
//!   are resident or which probes hit;
//! * **trace round-trip** — an `AccessTrace` recorded by a real run,
//!   exported to JSON, comes back through the replay reader as the
//!   identical record stream.

use mlr_core::MlrConfig;
use mlr_memo::EncoderConfig;
use mlr_memo::{
    DistributedMemoDb, MemoDbConfig, MemoStore, NodeTopology, ProbeOutcome, Provenance,
    QueryOutcome, ShardedMemoDb,
};
use mlr_runtime::{ReconJob, Runtime, RuntimeConfig};
use mlr_telemetry::{export_access_records, parse_access_records, AccessRecord};
use std::sync::Arc;

use mlr_lamino::FftOpKind;
use mlr_math::Complex64;

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 8,
        learning_rate: 1e-3,
    }
}

fn sharded(shards: usize) -> Arc<ShardedMemoDb> {
    Arc::new(ShardedMemoDb::with_shards(
        MemoDbConfig {
            tau: 0.9,
            ..Default::default()
        },
        encoder(),
        1,
        shards,
    ))
}

fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex64::new(scale * (4.0 * t + phase).sin(), scale * (2.0 * t).cos())
        })
        .collect()
}

/// Drives a deterministic query-or-insert schedule and returns the
/// hit/miss sequence.
fn run_schedule(store: &dyn MemoStore, rounds: usize, locations: usize) -> Vec<bool> {
    let mut outcomes = Vec::new();
    for round in 0..rounds {
        store.advance_epoch();
        for loc in 0..locations {
            let input = chunk(1.0 + loc as f64, 0.2 * loc as f64, 64);
            let key = store.encode(&input);
            let origin = Provenance::solo(round + 1);
            match store.query_with_key(FftOpKind::Fu2D, loc, &input, key, origin) {
                QueryOutcome::Hit { .. } => outcomes.push(true),
                QueryOutcome::Miss { key } => {
                    outcomes.push(false);
                    store.insert(
                        FftOpKind::Fu2D,
                        loc,
                        &input,
                        key,
                        chunk(2.0, 0.3, 16),
                        origin,
                        1e-3,
                    );
                }
            }
        }
    }
    outcomes
}

/// Probes every schedule location read-only and returns, per location, the
/// serving entry id (or `None` on a miss) — the store's observable lookup
/// behaviour, independent of any charging.
fn probe_map(store: &dyn MemoStore, locations: usize) -> Vec<Option<u64>> {
    (0..locations)
        .map(|loc| {
            let input = chunk(1.0 + loc as f64, 0.2 * loc as f64, 64);
            let key = store.encode(&input);
            match store.probe_with_key(
                FftOpKind::Fu2D,
                loc,
                &input,
                &key,
                Provenance::solo(usize::MAX),
            ) {
                ProbeOutcome::Hit { entry, .. } => Some(entry),
                _ => None,
            }
        })
        .collect()
}

#[test]
fn distributed_store_hits_are_bit_identical_to_sharded() {
    let plain = sharded(16);
    let reference = run_schedule(plain.as_ref(), 5, 10);
    assert!(reference.iter().any(|&h| h), "schedule never hits");
    assert!(reference.iter().any(|&h| !h), "schedule never misses");
    for nodes in [1, 2, 3, 4, 8] {
        let distributed = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(nodes));
        let observed = run_schedule(&distributed, 5, 10);
        assert_eq!(
            observed, reference,
            "{nodes}-node distributed store diverged from the sharded reference"
        );
        // Same resident set and counters, not just the same hit sequence.
        assert_eq!(distributed.len(), plain.len());
        assert_eq!(distributed.stats().hits, plain.stats().hits);
        assert_eq!(distributed.stats().inserts, plain.stats().inserts);
        assert_eq!(probe_map(&distributed, 10), probe_map(plain.as_ref(), 10));
    }
}

#[test]
fn placement_is_deterministic_and_layout_independent() {
    // Deterministic: same inputs, same placement, every time.
    for _ in 0..3 {
        let a = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        let b = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        assert_eq!(a.placement(), b.placement());
    }
    // Layout-independent semantics: permuting the per-node capacities (i.e.
    // relabeling node ids) re-routes traffic but never changes which
    // entries are resident or which probes hit.
    let layouts: [[f64; 4]; 4] = [
        [200.0, 200.0, 200.0, 200.0],
        [100.0, 200.0, 400.0, 200.0],
        [400.0, 200.0, 100.0, 200.0],
        [200.0, 400.0, 200.0, 100.0],
    ];
    let mut hit_sequences = Vec::new();
    let mut probe_maps = Vec::new();
    let mut resident = Vec::new();
    for capacities in &layouts {
        let store = DistributedMemoDb::with_capacities(
            sharded(16),
            NodeTopology::with_nodes(4),
            capacities,
        );
        hit_sequences.push(run_schedule(&store, 5, 10));
        probe_maps.push(probe_map(&store, 10));
        resident.push((store.len(), store.resident_bytes()));
    }
    for i in 1..layouts.len() {
        assert_eq!(
            hit_sequences[i], hit_sequences[0],
            "capacity layout {i} changed the hit sequence"
        );
        assert_eq!(
            probe_maps[i], probe_maps[0],
            "capacity layout {i} changed a probe's serving entry"
        );
        assert_eq!(
            resident[i], resident[0],
            "capacity layout {i} changed the resident set"
        );
    }
}

#[test]
fn runtime_with_topology_reconstructs_bit_identically() {
    let config = MlrConfig::quick(12, 8).with_iterations(3);
    // Two identical jobs run back to back on one worker: the second reuses
    // the first one's store entries, so the schedule exercises cross-job
    // hits as well as misses and inserts — deterministically.
    let run = |topology: Option<NodeTopology>| {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            topology,
            ..RuntimeConfig::matching(&config)
        });
        let reconstructions: Vec<Vec<f64>> = ["first", "second"]
            .iter()
            .map(|name| {
                rt.submit(ReconJob::new(*name, config))
                    .unwrap()
                    .wait_report()
                    .expect("job completes")
                    .reconstruction
                    .as_slice()
                    .to_vec()
            })
            .collect();
        let stats = rt.shutdown();
        (reconstructions, stats)
    };
    let (local, local_stats) = run(None);
    let (distributed, distributed_stats) = run(Some(NodeTopology::with_nodes(4)));
    assert_eq!(
        local, distributed,
        "the distributed tier must not perturb the reconstructions"
    );
    assert!(local_stats.store.hits > 0, "second job never hit the store");
    assert_eq!(local_stats.store.hits, distributed_stats.store.hits);
    assert!(local_stats.distributed.is_none());
    let dist = distributed_stats
        .distributed
        .expect("topology-configured runtime reports per-node stats");
    assert_eq!(dist.nodes.len(), 4);
    assert!(
        dist.active_nodes() >= 2,
        "store traffic never spread beyond one node: {dist:?}"
    );
    assert!(dist.remote_hits + dist.local_hits > 0);
    assert_eq!(
        dist.nodes.iter().map(|n| n.entries).sum::<usize>(),
        distributed_stats.store.entries
    );
}

#[test]
fn access_trace_round_trips_through_json() {
    // A real multi-iteration run with the access trace enabled...
    let config = MlrConfig::quick(12, 8).with_iterations(4);
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 4,
        telemetry: true,
        access_trace: Some(8192),
        ..RuntimeConfig::matching(&config)
    });
    let _ = rt
        .submit(ReconJob::new("traced", config))
        .unwrap()
        .wait_report()
        .expect("job completes");
    let snapshot = rt.telemetry().snapshot().expect("telemetry enabled");
    rt.shutdown();
    assert!(
        !snapshot.accesses.is_empty(),
        "the run recorded no store accesses"
    );

    // ...exports through the full snapshot JSON and the bare-array helper,
    // and both come back as the identical record stream.
    let from_snapshot = parse_access_records(&snapshot.to_json()).expect("snapshot JSON parses");
    assert_eq!(from_snapshot, snapshot.accesses);
    let bare = export_access_records(&snapshot.accesses);
    let from_bare: Vec<AccessRecord> = parse_access_records(&bare).expect("bare array parses");
    assert_eq!(from_bare, snapshot.accesses);
}

#[test]
fn distributed_stats_survive_json_export() {
    // The per-node stats ride inside RuntimeStats' JSON export; spot-check
    // the serialised document carries the per-node fields.
    let distributed = DistributedMemoDb::new(sharded(8), NodeTopology::with_nodes(2));
    let _ = run_schedule(&distributed, 4, 8);
    let stats = distributed.distributed_stats();
    let json = serde_json::to_string(&stats).expect("stats serialise");
    assert!(json.contains("\"nodes\""));
    assert!(json.contains("\"utilisation\""));
    assert!(json.contains("\"local_hits\""));
}
