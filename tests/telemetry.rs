//! Invariant tests for the unified telemetry stack (`mlr-telemetry`) and
//! its integration with the memo engine:
//!
//! * the span journal is a bounded ring even under multi-threaded stress;
//! * log₂-histogram percentiles track a sorted-reference nearest-rank
//!   percentile within bucket resolution, and never exceed any recorded
//!   sample;
//! * a disabled recorder records nothing anywhere (counters, stages, spans,
//!   snapshot);
//! * span sequences are keyed by *logical* ticks, so the executor emits an
//!   identical span stream whatever the intra-job thread count — the same
//!   determinism contract the reconstruction itself honours.

use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
use mlr_math::rng::seeded;
use mlr_math::Complex64;
use mlr_memo::{EncoderConfig, MemoConfig, MemoizedExecutor};
use mlr_telemetry::{
    CounterId, CounterTable, Histogram, SpanJournal, SpanKind, StageId, StageTable, Telemetry,
};
use rand::Rng;
use std::sync::Arc;

#[test]
fn span_journal_stays_bounded_under_concurrent_stress() {
    const CAPACITY: usize = 256;
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let journal = Arc::new(SpanJournal::new(CAPACITY));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let journal = Arc::clone(&journal);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    journal.record(t, SpanKind::Iteration, i);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(journal.len(), CAPACITY);
    assert_eq!(journal.dropped(), THREADS * PER_THREAD - CAPACITY as u64);
    let spans = journal.snapshot();
    assert_eq!(spans.len(), CAPACITY);
    // Ticks are unique (one fetch_add per record) and the ring keeps a
    // strictly ordered suffix of the stream.
    for pair in spans.windows(2) {
        assert!(pair[0].tick < pair[1].tick, "ring must stay oldest-first");
    }
    assert_eq!(spans.last().unwrap().tick, THREADS * PER_THREAD - 1);
}

#[test]
fn histogram_percentiles_track_a_sorted_reference() {
    // Deterministic heavy-tailed samples: the interesting regime for a
    // log2-bucket histogram.
    let mut rng = seeded(0x7E1E);
    let samples: Vec<u64> = (0..4096)
        .map(|_| {
            let magnitude = rng.gen_range(0..28u32);
            rng.gen_range(0..2u64.pow(magnitude))
        })
        .collect();
    let mut hist = Histogram::new();
    for &s in &samples {
        hist.record(s);
    }
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    for p in [0.0, 0.10, 0.50, 0.90, 0.99, 1.0] {
        let reference = sorted[((p * (sorted.len() - 1) as f64).round() as usize).min(4095)];
        let estimate = hist.percentile(p);
        // The estimate is the lower bound of the bucket holding the
        // reference rank: never above the reference, never below half of
        // it (one power of two), and never above the global maximum.
        assert!(
            estimate <= reference,
            "p{p}: estimate {estimate} above reference {reference}"
        );
        assert!(
            reference == 0 || estimate * 2 > reference,
            "p{p}: estimate {estimate} more than a bucket below reference {reference}"
        );
        assert!(estimate <= *sorted.last().unwrap());
    }
    assert_eq!(hist.count, 4096);
    assert_eq!(hist.sum, samples.iter().sum::<u64>());
}

#[test]
fn disabled_recorder_records_nothing() {
    let telemetry = Telemetry::disabled();
    assert!(!telemetry.is_enabled());
    telemetry.count(CounterId::JobsAdmitted, 5);
    let mut counters = CounterTable::new();
    counters.add(CounterId::ChunksCommitted, 9);
    telemetry.fold_counters(&counters);
    let mut stages = StageTable::new();
    stages.record(StageId::Encode, 1234);
    telemetry.fold_stages(&stages);
    telemetry.span(1, SpanKind::Admitted, 0);
    assert!(telemetry.metrics().is_none());
    assert!(telemetry.spans().is_none());
    assert!(telemetry.access_trace().is_none());
    assert!(telemetry.snapshot().is_none());
}

fn encoder() -> EncoderConfig {
    EncoderConfig {
        input_grid: 8,
        conv1_filters: 2,
        conv2_filters: 4,
        embedding_dim: 16,
        learning_rate: 1e-3,
    }
}

fn chunk(loc: usize, n: usize) -> Vec<Complex64> {
    let mut rng = seeded(0x5EA1 ^ loc as u64);
    (0..n)
        .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect()
}

/// Runs a fixed three-iteration batch schedule through a telemetry-enabled
/// executor at the given intra-job thread count and returns the observed
/// span stream as `(kind, arg, tick)` triples plus the counter snapshot.
fn span_stream(threads: usize) -> (Vec<(String, u64, u64)>, [u64; mlr_telemetry::COUNTER_COUNT]) {
    let n = 256;
    let locations = 12;
    let inputs: Vec<Vec<Complex64>> = (0..locations).map(|loc| chunk(loc, n)).collect();
    let mut outputs: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; locations];
    let exec = MemoizedExecutor::new(
        MemoConfig {
            warmup_iterations: 0,
            ..Default::default()
        },
        encoder(),
        7,
    )
    .with_parallelism(threads, None)
    .with_telemetry(Telemetry::enabled());
    let compute = |x: &[Complex64]| x.to_vec();
    for it in 0..3 {
        exec.begin_iteration(it);
        let batch: Vec<ChunkRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(loc, input)| ChunkRequest {
                loc,
                input,
                compute: &compute,
            })
            .collect();
        let mut slots: Vec<&mut [Complex64]> =
            outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        exec.execute_batch_into(FftOpKind::Fu2D, &batch, &mut slots);
    }
    let snapshot = exec.telemetry().snapshot().expect("telemetry enabled");
    let spans = snapshot
        .spans
        .iter()
        .map(|s| (s.kind.name().to_string(), s.arg, s.tick))
        .collect();
    (spans, snapshot.metrics.counters)
}

#[test]
fn span_stream_is_deterministic_across_thread_counts() {
    // Spans are emitted from the sequential sections of the two-phase
    // batch protocol and stamped with logical ticks, so the full stream —
    // kinds, args and tick values — is bit-identical whether the chunk
    // work inside a batch ran on one thread or four.
    let (sequential, counters_1t) = span_stream(1);
    let (parallel, counters_4t) = span_stream(4);
    assert!(!sequential.is_empty());
    assert_eq!(sequential, parallel);
    assert_eq!(counters_1t, counters_4t);
    // The stream has the expected shape: one Iteration span per iteration,
    // one Operator span per batch, in alternating order.
    let kinds: Vec<&str> = sequential.iter().map(|(k, _, _)| k.as_str()).collect();
    assert_eq!(
        kinds,
        [
            "iteration",
            "operator",
            "iteration",
            "operator",
            "iteration",
            "operator"
        ]
    );
    assert_eq!(counters_1t[CounterId::OperatorBatches as usize], 3);
    assert_eq!(counters_1t[CounterId::ChunksCommitted as usize], 36);
}
